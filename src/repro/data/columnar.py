"""Array-native relations: columnar storage behind the Relation interface.

A :class:`ColumnarRelation` stores its payloads in packed ring blocks
(structure-of-arrays, via the ring's ``kernel_ops`` store hooks) instead of
a ``{key: payload}`` dict:

* ``_rows`` maps each key to its row id, ``_keys`` maps rows back;
* the payload column lives in one preallocated block per ring layout,
  grown by doubling and compacted in place when enough rows die;
* ``absorb_bulk`` is a hash split (hits vs new keys) followed by a handful
  of vectorized block operations — take, add, zero-mask, put, append —
  instead of per-key dict writes and ring calls;
* secondary indexes keep their per-subkey ring sums in a packed block of
  their own, maintained as grouped scatter-adds (one ``np.add.at`` sweep
  per absorbed batch) with a vectorized zero-mask for group-aware probes;
* ``partition`` hashes each *distinct* attribute value once and moves
  payloads shard-by-shard with array takes.

Rings without kernel ops (matrices, booleans, …) fall back to an object
column with identical semantics, so every ring works columnar.

Dict compatibility: ``relation._data`` and the registered index entries
are facade objects speaking the mapping protocol, so the interpreter
backend, the generated-source backend, and existing tests keep working
unchanged.  The kernel backend bypasses the facades entirely and reads
``_rows`` / the payload blocks directly (see :mod:`repro.core.kernels`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.data.schema import SchemaError, as_schema, key_projector

__all__ = ["ColumnarRelation"]

Key = Tuple[Any, ...]


def _index_list(rows):
    return rows.tolist() if isinstance(rows, np.ndarray) else list(rows)


class _ObjectOps:
    """Object-column fallback for rings without kernel ops.

    Implements the same packed-column protocol with a Python list as the
    block, so :class:`ColumnarRelation` runs one code path for every ring.
    """

    __slots__ = ("ring",)

    def __init__(self, ring):
        self.ring = ring

    def pack(self, column, n):
        return list(column)

    def payload_layout(self, payload):
        return ()

    def unpack(self, packed):
        return list(packed)

    def add_packed(self, a, b):
        radd = self.ring.add
        return [radd(x, y) for x, y in zip(a, b)]

    def neg_packed(self, a):
        rneg = self.ring.neg
        return [rneg(x) for x in a]

    def zero_mask(self, packed):
        rzero = self.ring.is_zero
        return np.fromiter(
            (rzero(p) for p in packed), dtype=bool, count=len(packed)
        )

    def reduce(self, packed, group_ids, n_groups):
        groups = [[] for _ in range(n_groups)]
        for gid, payload in zip(_index_list(group_ids), packed):
            groups[gid].append(payload)
        rsum = self.ring.sum
        return [rsum(group) for group in groups]

    def alloc(self, cap, layout=()):
        return [None] * cap

    def grow(self, block, used, cap):
        return block + [None] * (cap - len(block))

    def take(self, block, rows):
        return [block[i] for i in _index_list(rows)]

    def put(self, block, rows, packed):
        for i, payload in zip(_index_list(rows), packed):
            block[i] = payload
        return block

    def add_at(self, block, rows, packed):
        radd = self.ring.add
        for i, payload in zip(_index_list(rows), packed):
            current = block[i]
            block[i] = payload if current is None else radd(current, payload)
        return block

    def zero_rows(self, block, rows):
        zero = self.ring.zero
        for i in _index_list(rows):
            block[i] = zero
        return block


class _PayloadStore:
    """A growable packed block of ring payloads (rows addressed by id)."""

    __slots__ = ("ops", "block", "cap", "used")

    def __init__(self, ops):
        self.ops = ops
        self.block = ops.alloc(0)
        self.cap = 0
        self.used = 0

    def ensure(self, extra: int) -> None:
        need = self.used + extra
        if need <= self.cap:
            return
        cap = max(16, self.cap * 2)
        while cap < need:
            cap *= 2
        self.block = self.ops.grow(self.block, self.used, cap)
        self.cap = cap

    def append(self, packed, count: int):
        self.ensure(count)
        rows = np.arange(self.used, self.used + count, dtype=np.intp)
        self.block = self.ops.put(self.block, rows, packed)
        self.used += count
        return rows

    def take(self, rows):
        return self.ops.take(self.block, rows)

    def put(self, rows, packed) -> None:
        self.block = self.ops.put(self.block, rows, packed)

    def add_at(self, rows, packed) -> None:
        self.block = self.ops.add_at(self.block, rows, packed)

    def zero_rows(self, rows) -> None:
        self.block = self.ops.zero_rows(self.block, rows)

    def payload(self, row: int):
        return self.ops.unpack(
            self.ops.take(self.block, np.array([row], dtype=np.intp))
        )[0]

    def reset(self) -> None:
        self.used = 0


class _IndexState:
    """One secondary index: subkey → group id, member rows, packed sums.

    ``members`` maps each subkey to ``{key: row}`` (pruned on kill exactly
    like the dict index's buckets, so emptiness and iteration agree), and
    the per-subkey ring sums live in a packed store addressed by group id
    with ``szero`` as the maintained zero-mask — the group-aware probe of
    the kernel backend reads ``gids``/``szero`` directly.
    """

    __slots__ = (
        "relation", "attrs", "projector", "gids", "members", "sums",
        "szero", "free",
    )

    def __init__(self, relation: "ColumnarRelation", attrs, projector):
        self.relation = relation
        self.attrs = attrs
        self.projector = projector
        self.gids: dict = {}
        self.members: dict = {}
        self.sums = _PayloadStore(relation._ops)
        self.szero = np.zeros(0, dtype=bool)
        self.free: list = []

    def _sync_szero(self) -> None:
        if self.sums.cap > len(self.szero):
            grown = np.zeros(self.sums.cap, dtype=bool)
            grown[: len(self.szero)] = self.szero
            self.szero = grown

    def alloc_gid(self, subkey) -> int:
        if self.free:
            gid = self.free.pop()
        else:
            self.sums.ensure(1)
            gid = self.sums.used
            self.sums.used += 1
        self.sums.zero_rows(np.array([gid], dtype=np.intp))
        self._sync_szero()
        self.gids[subkey] = gid
        return gid

    def rebuild(self) -> None:
        """Build the index from the live rows in one grouped sweep."""
        self.gids.clear()
        self.members.clear()
        self.free.clear()
        self.sums.reset()
        relation = self.relation
        n = len(relation._rows)
        if not n:
            return
        projector = self.projector
        gids = self.gids
        members = self.members
        group_ids = np.empty(n, dtype=np.intp)
        rows = np.empty(n, dtype=np.intp)
        for i, (key, row) in enumerate(relation._rows.items()):
            subkey = projector(key)
            gid = gids.get(subkey)
            if gid is None:
                gid = len(gids)
                gids[subkey] = gid
                members[subkey] = {key: row}
            else:
                members[subkey][key] = row
            group_ids[i] = gid
            rows[i] = row
        ops = relation._ops
        n_groups = len(gids)
        reduced = ops.reduce(relation._store.take(rows), group_ids, n_groups)
        self.sums.ensure(n_groups)
        self.sums.put(np.arange(n_groups, dtype=np.intp), reduced)
        self.sums.used = n_groups
        self._sync_szero()
        self.szero[:n_groups] = ops.zero_mask(reduced)

    def apply(
        self, kill_keys, kill_rows, negpre, surv_keys, d_surv,
        new_keys, new_rows, d_new,
    ) -> None:
        """Replay one absorbed batch: kills, surviving hits, then news."""
        ops = self.relation._ops
        projector = self.projector
        gids = self.gids
        members = self.members
        touched = []
        if kill_keys:
            kept_pos = []
            kept_gid = []
            for j, key in enumerate(kill_keys):
                subkey = projector(key)
                bucket = members.get(subkey)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del members[subkey]
                        gid = gids.pop(subkey, None)
                        if gid is not None:
                            self.free.append(gid)
                        continue
                gid = gids.get(subkey)
                if gid is not None:
                    # Bucket still non-empty: keep the (possibly zero)
                    # cancelled sum, exactly like the dict index.
                    kept_pos.append(j)
                    kept_gid.append(gid)
            if kept_pos:
                rows = np.array(kept_gid, dtype=np.intp)
                values = ops.take(negpre, np.array(kept_pos, dtype=np.intp))
                self.sums.add_at(rows, values)
                touched.append(rows)
        if surv_keys:
            rows = np.empty(len(surv_keys), dtype=np.intp)
            for j, key in enumerate(surv_keys):
                rows[j] = gids[projector(key)]
            self.sums.add_at(rows, d_surv)
            touched.append(rows)
        if new_keys:
            rows = np.empty(len(new_keys), dtype=np.intp)
            for j, (key, row) in enumerate(zip(new_keys, _index_list(new_rows))):
                subkey = projector(key)
                gid = gids.get(subkey)
                if gid is None:
                    gid = self.alloc_gid(subkey)
                    members[subkey] = {key: row}
                else:
                    members[subkey][key] = row
                rows[j] = gid
            self.sums.add_at(rows, d_new)
            touched.append(rows)
        if touched:
            gids_touched = np.unique(np.concatenate(touched))
            self.szero[gids_touched] = ops.zero_mask(
                self.sums.take(gids_touched)
            )

    def sum_payload(self, gid: int):
        return self.sums.payload(gid)

    def clear(self) -> None:
        self.gids.clear()
        self.members.clear()
        self.free.clear()
        self.sums.reset()


class _DataFacade:
    """Mapping view over a columnar relation's live rows (dict-shaped)."""

    __slots__ = ("relation",)

    def __init__(self, relation: "ColumnarRelation"):
        self.relation = relation

    def __len__(self):
        return len(self.relation._rows)

    def __bool__(self):
        return bool(self.relation._rows)

    def __iter__(self):
        return iter(self.relation._rows)

    def __contains__(self, key):
        return key in self.relation._rows

    def keys(self):
        return self.relation._rows.keys()

    def __getitem__(self, key):
        row = self.relation._rows.get(key)
        if row is None:
            raise KeyError(key)
        return self.relation._store.payload(row)

    def get(self, key, default=None):
        row = self.relation._rows.get(key)
        if row is None:
            return default
        return self.relation._store.payload(row)

    def items(self):
        relation = self.relation
        rows = relation._rows
        if not rows:
            return
        order = np.fromiter(rows.values(), dtype=np.intp, count=len(rows))
        payloads = relation._ops.unpack(relation._store.take(order))
        yield from zip(rows.keys(), payloads)

    def values(self):
        for _, payload in self.items():
            yield payload


class _BucketView:
    """One index bucket (subkey's entries) as a read-only mapping."""

    __slots__ = ("state", "bucket")

    def __init__(self, state: _IndexState, bucket: dict):
        self.state = state
        self.bucket = bucket

    def __len__(self):
        return len(self.bucket)

    def __bool__(self):
        return bool(self.bucket)

    def __iter__(self):
        return iter(self.bucket)

    def __contains__(self, key):
        return key in self.bucket

    def keys(self):
        return self.bucket.keys()

    def __getitem__(self, key):
        return self.state.relation._store.payload(self.bucket[key])

    def get(self, key, default=None):
        row = self.bucket.get(key)
        if row is None:
            return default
        return self.state.relation._store.payload(row)

    def items(self):
        store = self.state.relation._store
        for key, row in self.bucket.items():
            yield key, store.payload(row)

    def values(self):
        store = self.state.relation._store
        for row in self.bucket.values():
            yield store.payload(row)


class _BucketsFacade:
    """subkey → bucket mapping facade over an index state."""

    __slots__ = ("state",)

    def __init__(self, state: _IndexState):
        self.state = state

    def __len__(self):
        return len(self.state.members)

    def __bool__(self):
        return bool(self.state.members)

    def __iter__(self):
        return iter(self.state.members)

    def __contains__(self, subkey):
        return subkey in self.state.members

    def keys(self):
        return self.state.members.keys()

    def __getitem__(self, subkey):
        return _BucketView(self.state, self.state.members[subkey])

    def get(self, subkey, default=None):
        bucket = self.state.members.get(subkey)
        if bucket is None:
            return default
        return _BucketView(self.state, bucket)

    def items(self):
        state = self.state
        for subkey, bucket in state.members.items():
            yield subkey, _BucketView(state, bucket)

    def values(self):
        state = self.state
        for bucket in state.members.values():
            yield _BucketView(state, bucket)


class _SumsFacade:
    """subkey → ring sum mapping facade over an index state."""

    __slots__ = ("state",)

    def __init__(self, state: _IndexState):
        self.state = state

    def __len__(self):
        return len(self.state.gids)

    def __bool__(self):
        return bool(self.state.gids)

    def __iter__(self):
        return iter(self.state.gids)

    def __contains__(self, subkey):
        return subkey in self.state.gids

    def keys(self):
        return self.state.gids.keys()

    def __getitem__(self, subkey):
        return self.state.sum_payload(self.state.gids[subkey])

    def get(self, subkey, default=None):
        gid = self.state.gids.get(subkey)
        if gid is None:
            return default
        return self.state.sum_payload(gid)

    def items(self):
        state = self.state
        for subkey, gid in state.gids.items():
            yield subkey, state.sum_payload(gid)

    def values(self):
        state = self.state
        for gid in state.gids.values():
            yield state.sum_payload(gid)


_NO_TOTAL = object()


class ColumnarRelation(Relation):
    """A :class:`Relation` whose payloads live in packed ring blocks."""

    __slots__ = (
        "_rows", "_keys", "_store", "_ops", "_packed", "_states",
        "_dead", "_facade", "_total_cache",
    )

    #: Compact once this many rows are dead (and they outnumber the live).
    COMPACT_MIN_DEAD = 64

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        ring,
        data: Optional[Mapping[Key, Any]] = None,
    ):
        self.name = name
        self.schema = as_schema(schema)
        self.ring = ring
        ops = ring.kernel_ops()
        required = ("pack", "take", "put", "add_at", "add_packed", "zero_mask")
        if ops is None or not all(hasattr(ops, hook) for hook in required):
            ops = _ObjectOps(ring)
            self._packed = False
        else:
            self._packed = True
        self._ops = ops
        self._rows: dict = {}
        self._keys: list = []
        self._store = _PayloadStore(ops)
        self._states: dict = {}
        self._indexes = {}
        self._dead = 0
        self._facade = _DataFacade(self)
        self._total_cache = _NO_TOTAL
        if data:
            width = len(self.schema)
            stage = Relation(name, self.schema, ring)
            for key, payload in data.items():
                key = tuple(key)
                if len(key) != width:
                    raise SchemaError(
                        f"key {key} does not match schema {self.schema}"
                    )
                if not ring.is_zero(payload):
                    stage._data[key] = payload
            self.absorb_bulk(stage)

    @property
    def _data(self):
        return self._facade

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "ColumnarRelation":
        out = ColumnarRelation(name or self.name, self.schema, self.ring)
        if self._rows:
            rows = np.fromiter(
                self._rows.values(), dtype=np.intp, count=len(self._rows)
            )
            out._bulk_load(list(self._rows.keys()), self._store.take(rows))
        return out

    def _bulk_load(self, keys: list, packed) -> None:
        """Load fresh (disjoint, non-zero) keys with their packed column."""
        rows = self._store.append(packed, len(keys))
        self._keys.extend(keys)
        self._rows.update(zip(keys, rows.tolist()))
        self._total_cache = _NO_TOTAL

    # ------------------------------------------------------------------
    # Lookup and mutation
    # ------------------------------------------------------------------

    def _payload_at(self, row: int):
        return self._store.payload(row)

    def add(self, key: Key, payload) -> None:
        if self.ring.is_zero(payload):
            return
        delta = Relation(self.name, self.schema, self.ring)
        delta._data[tuple(key)] = payload
        self.absorb_bulk(delta)

    def register_index(self, attrs: Sequence[str]) -> None:
        attrs = tuple(attrs)
        if attrs == self.schema or attrs in self._states:
            return
        projector = key_projector(self.schema, attrs)
        state = _IndexState(self, attrs, projector)
        state.rebuild()
        self._states[attrs] = state
        self._indexes[attrs] = (
            projector, _BucketsFacade(state), _SumsFacade(state)
        )

    def lookup(self, attrs: Tuple[str, ...], subkey: tuple):
        if attrs == self.schema:
            row = self._rows.get(subkey)
            return ((subkey, self._payload_at(row)),) if row is not None else ()
        if not attrs:
            return self._data.items()
        state = self._states.get(attrs)
        if state is None:
            raise KeyError(f"relation {self.name!r} has no index on {attrs}")
        bucket = state.members.get(subkey)
        if not bucket:
            return ()
        store = self._store
        return [(key, store.payload(row)) for key, row in bucket.items()]

    def lookup_sum(self, attrs: Tuple[str, ...], subkey: tuple):
        if attrs == self.schema:
            row = self._rows.get(subkey)
            return self._payload_at(row) if row is not None else self.ring.zero
        if not attrs:
            return self.total()
        state = self._states.get(attrs)
        if state is None:
            raise KeyError(f"relation {self.name!r} has no index on {attrs}")
        gid = state.gids.get(subkey)
        return state.sum_payload(gid) if gid is not None else self.ring.zero

    def total(self):
        """Vectorized full aggregate, memoized until the next mutation."""
        cached = self._total_cache
        if cached is not _NO_TOTAL:
            return cached
        n = len(self._rows)
        if not n:
            total = self.ring.zero
        else:
            rows = np.fromiter(self._rows.values(), dtype=np.intp, count=n)
            ops = self._ops
            reduced = ops.reduce(
                self._store.take(rows), np.zeros(n, dtype=np.intp), 1
            )
            total = ops.unpack(reduced)[0]
        self._total_cache = total
        return total

    # ------------------------------------------------------------------
    # Bulk union (the vectorized hot path)
    # ------------------------------------------------------------------

    def _delta_parts(self, delta: Relation):
        """Split a delta into (keys, packed column or None, payload list)."""
        if self._packed:
            packed = getattr(delta, "_kernel_packed", None)
            if packed is not None and delta.ring is self.ring:
                return list(delta._data.keys()), packed, None
            if (
                isinstance(delta, ColumnarRelation)
                and delta._packed
                and delta.ring is self.ring
                and delta._rows
            ):
                rows = np.fromiter(
                    delta._rows.values(), dtype=np.intp, count=len(delta._rows)
                )
                return list(delta._rows.keys()), delta._store.take(rows), None
        keys = []
        payloads = []
        for key, payload in delta._data.items():
            keys.append(key)
            payloads.append(payload)
        return keys, None, payloads

    def _absorb_scalar(self, keys, payloads) -> None:
        """Per-key fallback for layout-mixed (unpackable) deltas."""
        for key, payload in zip(keys, payloads):
            self.add(key, payload)

    def absorb_bulk(self, delta: Relation) -> None:
        if delta.schema != self.schema:
            raise SchemaError(
                f"cannot absorb {delta.schema} into {self.schema}"
            )
        keys, column, payloads = self._delta_parts(delta)
        n = len(keys)
        if not n:
            return
        ops = self._ops
        rows_map = self._rows
        hit_keys: list = []
        hit_rows: list = []
        hit_idx: list = []
        new_keys: list = []
        new_idx: list = []
        for i, key in enumerate(keys):
            row = rows_map.get(key)
            if row is None:
                new_keys.append(key)
                new_idx.append(i)
            else:
                hit_keys.append(key)
                hit_rows.append(row)
                hit_idx.append(i)
        d_hit = d_new = None
        if hit_keys:
            if column is not None:
                d_hit = ops.take(column, np.array(hit_idx, dtype=np.intp))
            else:
                d_hit = ops.pack(
                    [payloads[i] for i in hit_idx], len(hit_idx)
                )
                if d_hit is None:
                    self._absorb_scalar(keys, payloads)
                    return
        if new_keys:
            if column is not None:
                d_new = ops.take(column, np.array(new_idx, dtype=np.intp))
            else:
                d_new = ops.pack(
                    [payloads[i] for i in new_idx], len(new_idx)
                )
                if d_new is None:
                    self._absorb_scalar(keys, payloads)
                    return
        self._total_cache = _NO_TOTAL
        store = self._store
        states = self._states
        kill_keys: list = []
        kill_rows: list = []
        negpre = None
        surv_keys: list = []
        d_surv = None
        if hit_keys:
            hit_rows_arr = np.array(hit_rows, dtype=np.intp)
            pre = store.take(hit_rows_arr)
            merged = ops.add_packed(pre, d_hit)
            store.put(hit_rows_arr, merged)
            zmask = ops.zero_mask(merged)
            if zmask.any():
                kill_pos = np.flatnonzero(zmask)
                surv_pos = np.flatnonzero(~zmask)
                for j in kill_pos.tolist():
                    key = hit_keys[j]
                    kill_keys.append(key)
                    kill_rows.append(hit_rows[j])
                    del rows_map[key]
                self._dead += len(kill_keys)
                if states:
                    negpre = ops.neg_packed(ops.take(pre, kill_pos))
                    d_surv = ops.take(d_hit, surv_pos)
                    surv_keys = [hit_keys[j] for j in surv_pos.tolist()]
            elif states:
                surv_keys = hit_keys
                d_surv = d_hit
        new_rows = None
        if new_keys:
            new_rows = store.append(d_new, len(new_keys))
            self._keys.extend(new_keys)
            rows_map.update(zip(new_keys, new_rows.tolist()))
        if states:
            for state in states.values():
                state.apply(
                    kill_keys, kill_rows, negpre,
                    surv_keys, d_surv, new_keys, new_rows, d_new,
                )
        if self._dead > self.COMPACT_MIN_DEAD and self._dead > len(rows_map):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the payload block in place, dropping dead rows.

        Container identities (``_rows``, ``_keys``, index states) never
        change: compiled kernel programs hold direct references to them,
        and only reach the (reallocating) block arrays through attribute
        access on these stable objects.
        """
        keys = list(self._rows.keys())
        n = len(keys)
        store = self._store
        if n:
            rows = np.fromiter(self._rows.values(), dtype=np.intp, count=n)
            packed = store.take(rows)  # fancy indexing copies: safe to reuse
            store.reset()
            store.append(packed, n)
        else:
            store.reset()
        self._keys[:] = keys
        self._rows.clear()
        self._rows.update(zip(keys, range(n)))
        for state in self._states.values():
            for bucket in state.members.values():
                for key in bucket:
                    bucket[key] = self._rows[key]
        self._dead = 0

    def clear(self) -> None:
        self._rows.clear()
        self._keys.clear()
        self._store.reset()
        self._dead = 0
        self._total_cache = _NO_TOTAL
        for state in self._states.values():
            state.clear()

    # ------------------------------------------------------------------
    # Partitioning (sharding support)
    # ------------------------------------------------------------------

    def partition(
        self, attr: str, shards: int, hasher: Callable[[Any], int]
    ) -> list:
        """Hash-partition with one hash per *distinct* value and array
        takes per shard (fragments stay columnar)."""
        if shards <= 0:
            raise SchemaError("shard count must be positive")
        if attr not in self.schema:
            raise SchemaError(
                f"cannot partition {self.name!r} on {attr!r}: "
                f"not in schema {self.schema}"
            )
        position = self.schema.index(attr)
        n = len(self._rows)
        keys = list(self._rows.keys())
        fragments = [
            ColumnarRelation(self.name, self.schema, self.ring)
            for _ in range(shards)
        ]
        if not n:
            return fragments
        rows = np.fromiter(self._rows.values(), dtype=np.intp, count=n)
        assign = np.empty(n, dtype=np.intp)
        memo: dict = {}
        for i, key in enumerate(keys):
            value = key[position]
            shard = memo.get(value)
            if shard is None:
                shard = hasher(value) % shards
                memo[value] = shard
            assign[i] = shard
        for shard, fragment in enumerate(fragments):
            picked = np.flatnonzero(assign == shard)
            if len(picked):
                fragment._bulk_load(
                    [keys[i] for i in picked],
                    self._store.take(rows[picked]),
                )
        return fragments
