"""Data model: relations over rings, databases, indicator views."""

from repro.data.columnar import ColumnarRelation
from repro.data.database import Database
from repro.data.indicator import IndicatorView
from repro.data.relation import Relation
from repro.data.schema import SchemaError, as_schema, merge_schemas

__all__ = [
    "Relation",
    "ColumnarRelation",
    "Database",
    "IndicatorView",
    "SchemaError",
    "as_schema",
    "merge_schemas",
]
