"""Relations over rings: finitely supported maps from keys to payloads.

This is the paper's data model (Section 2): a relation ``R`` over schema
``S`` and ring ``D`` is a function ``Dom(S) → D`` that is non-zero on
finitely many tuples.  Keys with payload ``0`` are eagerly dropped, so
``t ∈ R`` iff ``R[t] ≠ 0`` and ``|R|`` matches the paper's size notion.

The three query-language operators are methods here:

* ``⊎`` (union):           :meth:`Relation.union` — pointwise payload ``+``;
* ``⊗`` (natural join):    :meth:`Relation.join` — payload ``*`` on matches;
* ``⊕_X`` (marginalization): :meth:`Relation.marginalize` — group by the
  remaining attributes, multiplying payloads by the lifting function of the
  marginalized variable.

The ring is duck-typed (any object with ``zero/one/add/mul/neg/is_zero``);
this module deliberately avoids importing :mod:`repro.rings` so that ring
implementations (e.g. the relational data ring) can themselves build nested
relations without an import cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.data.schema import (
    SchemaError,
    as_schema,
    key_projector,
    merge_schemas,
)

__all__ = ["Relation"]

Payload = Any
Key = Tuple[Any, ...]
LiftFn = Callable[[Any], Payload]


class Relation:
    """A finitely supported map from keys (tuples over a schema) to payloads."""

    __slots__ = ("name", "schema", "ring", "_data", "_indexes")

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        ring,
        data: Optional[Mapping[Key, Payload]] = None,
    ):
        self.name = name
        self.schema = as_schema(schema)
        self.ring = ring
        self._data: Dict[Key, Payload] = {}
        #: Secondary indexes: attrs → (projector, {subkey → {key → payload}}).
        #: Registered by the IVM engine on materialized views so delta joins
        #: probe rather than scan (the paper's multi-indexed maps).
        self._indexes: Dict[Tuple[str, ...], tuple] = {}
        if data:
            width = len(self.schema)
            for key, payload in data.items():
                key = tuple(key)
                if len(key) != width:
                    raise SchemaError(
                        f"key {key} does not match schema {self.schema}"
                    )
                if not ring.is_zero(payload):
                    self._data[key] = payload

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        name: str,
        schema: Iterable[str],
        ring,
        tuples: Iterable[Sequence[Any]],
        payload: Optional[Payload] = None,
    ) -> "Relation":
        """Build a relation mapping each tuple to ``payload`` (default ``1``).

        Repeated tuples accumulate (payloads add up), matching multiset
        semantics under the ℤ ring.
        """
        rel = cls(name, schema, ring)
        value = ring.one if payload is None else payload
        for row in tuples:
            rel.add(tuple(row), value)
        return rel

    @classmethod
    def empty(cls, name: str, schema: Iterable[str], ring) -> "Relation":
        """The empty relation (maps every tuple to ``0``)."""
        return cls(name, schema, ring)

    def spawn(self, name: str, schema: Iterable[str]) -> "Relation":
        """An empty relation over the same ring with a new name/schema."""
        return Relation(name, schema, self.ring)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """A shallow copy (payloads are shared; they are treated immutably).

        Registered secondary indexes are *not* copied: the copy starts
        index-free, and callers that probe it must :meth:`register_index`
        what they need (the engine registers indexes per stored view, and
        copies are used as transient deltas that are only scanned).
        """
        out = Relation(name or self.name, self.schema, self.ring)
        out._data = dict(self._data)
        return out

    # ------------------------------------------------------------------
    # Lookup and mutation
    # ------------------------------------------------------------------

    def payload(self, key: Key) -> Payload:
        """``R[t]``: the payload of ``key`` (ring zero when absent)."""
        return self._data.get(tuple(key), self.ring.zero)

    def __getitem__(self, key: Key) -> Payload:
        return self.payload(key)

    def __contains__(self, key: Key) -> bool:
        return tuple(key) in self._data

    def add(self, key: Key, payload: Payload) -> None:
        """Accumulate ``payload`` onto ``key`` in place, dropping zeros.

        This is the single mutation primitive; maintenance (``V := V ⊎ δV``)
        and bulk loading are built on it.  Registered secondary indexes are
        kept in sync.  The key is coerced to a tuple so list/other-sequence
        keys land on the same entry that :meth:`payload` and
        ``__contains__`` (which coerce too) will find.
        """
        ring = self.ring
        if ring.is_zero(payload):
            return
        key = tuple(key)
        data = self._data
        current = data.get(key)
        if current is None:
            data[key] = payload
            if self._indexes:
                self._index_set(key, payload, payload)
            return
        merged = ring.add(current, payload)
        if ring.is_zero(merged):
            del data[key]
            if self._indexes:
                self._index_drop(key, ring.neg(current))
        else:
            data[key] = merged
            if self._indexes:
                self._index_set(key, merged, payload)

    # ------------------------------------------------------------------
    # Secondary indexes (multi-indexed maps, as in DBToaster's runtime)
    # ------------------------------------------------------------------

    def register_index(self, attrs: Sequence[str]) -> None:
        """Maintain a secondary index on ``attrs`` from now on.

        An index maps each projection subkey to the bucket of (key, payload)
        entries sharing it, letting delta joins probe this relation in time
        proportional to the matches instead of scanning it.  Each bucket
        also maintains the ring sum of its payloads, so group-aware joins
        (``lookup_sum``) touch one value instead of the whole bucket.
        """
        attrs = tuple(attrs)
        if attrs == self.schema or attrs in self._indexes:
            return  # the primary map already serves full-key lookups
        projector = key_projector(self.schema, attrs)
        buckets: Dict[tuple, Dict[Key, Payload]] = {}
        sums: Dict[tuple, Payload] = {}
        ring = self.ring
        for key, payload in self._data.items():
            subkey = projector(key)
            buckets.setdefault(subkey, {})[key] = payload
            current = sums.get(subkey)
            sums[subkey] = payload if current is None else ring.add(current, payload)
        self._indexes[attrs] = (projector, buckets, sums)

    def lookup(self, attrs: Tuple[str, ...], subkey: tuple):
        """Entries whose projection on ``attrs`` equals ``subkey``.

        Falls back to the primary map for full-schema lookups; raises if no
        index was registered for a proper subset of attributes (the engine
        registers every index it needs up front).
        """
        if attrs == self.schema:
            payload = self._data.get(subkey)
            return ((subkey, payload),) if payload is not None else ()
        if not attrs:
            return self._data.items()
        entry = self._indexes.get(attrs)
        if entry is None:
            raise KeyError(
                f"relation {self.name!r} has no index on {attrs}"
            )
        bucket = entry[1].get(subkey)
        return bucket.items() if bucket else ()

    def lookup_sum(self, attrs: Tuple[str, ...], subkey: tuple) -> Payload:
        """Ring sum of the payloads matching ``subkey`` on ``attrs``.

        The group-aware probe: when a delta join needs a sibling view only
        up to these attributes (no downstream use of the rest), one lookup
        replaces iterating the whole bucket — this is how star-join roots
        stay O(1) per update.
        """
        if attrs == self.schema:
            payload = self._data.get(subkey)
            return payload if payload is not None else self.ring.zero
        if not attrs:
            return self.ring.sum(self._data.values())
        entry = self._indexes.get(attrs)
        if entry is None:
            raise KeyError(
                f"relation {self.name!r} has no index on {attrs}"
            )
        total = entry[2].get(subkey)
        return total if total is not None else self.ring.zero

    def _index_set(self, key: Key, payload: Payload, delta: Payload) -> None:
        ring = self.ring
        for projector, buckets, sums in self._indexes.values():
            subkey = projector(key)
            buckets.setdefault(subkey, {})[key] = payload
            current = sums.get(subkey)
            sums[subkey] = delta if current is None else ring.add(current, delta)

    def _index_drop(self, key: Key, delta: Payload) -> None:
        ring = self.ring
        for projector, buckets, sums in self._indexes.values():
            subkey = projector(key)
            bucket = buckets.get(subkey)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del buckets[subkey]
                    sums.pop(subkey, None)
                    continue
            current = sums.get(subkey)
            if current is not None:
                # The bucket is still non-empty; keep the (possibly zero)
                # cancelled sum so lookups stay consistent.
                sums[subkey] = ring.add(current, delta)

    def absorb(self, delta: "Relation") -> None:
        """In-place union: ``self := self ⊎ delta`` (schemas must agree)."""
        self.absorb_bulk(delta)

    def absorb_bulk(self, delta: "Relation") -> None:
        """Bulk in-place union: single-pass dict merge + one index sweep.

        Semantically identical to per-tuple :meth:`add` over ``delta``, but
        the ring operations are bound to locals, the primary map is merged
        in one pass, and each registered secondary index is maintained in
        one sweep over the effective updates instead of a per-tuple
        ``_index_set``/``_index_drop`` round-trip.
        """
        if delta.schema != self.schema:
            raise SchemaError(
                f"cannot absorb {delta.schema} into {self.schema}"
            )
        ring = self.ring
        radd = ring.add
        rzero = ring.is_zero
        data = self._data
        if not self._indexes:
            # Delta payloads are never zero (the relation invariant), so the
            # merge only needs the cancellation test on existing keys.
            for key, payload in delta._data.items():
                current = data.get(key)
                if current is None:
                    data[key] = payload
                else:
                    merged = radd(current, payload)
                    if rzero(merged):
                        del data[key]
                    else:
                        data[key] = merged
            return
        rneg = ring.neg
        #: (key, stored payload after the merge or None if deleted, applied
        #: payload delta) — replayed once per index below.
        updates: list = []
        for key, payload in delta._data.items():
            current = data.get(key)
            if current is None:
                data[key] = payload
                updates.append((key, payload, payload))
            else:
                merged = radd(current, payload)
                if rzero(merged):
                    del data[key]
                    updates.append((key, None, rneg(current)))
                else:
                    data[key] = merged
                    updates.append((key, merged, payload))
        for projector, buckets, sums in self._indexes.values():
            for key, stored, applied in updates:
                subkey = projector(key)
                if stored is None:
                    bucket = buckets.get(subkey)
                    if bucket is not None:
                        bucket.pop(key, None)
                        if not bucket:
                            del buckets[subkey]
                            sums.pop(subkey, None)
                            continue
                    current = sums.get(subkey)
                    if current is not None:
                        # Keep the (possibly zero) cancelled sum while the
                        # bucket is non-empty, as _index_drop does.
                        sums[subkey] = radd(current, applied)
                else:
                    bucket = buckets.get(subkey)
                    if bucket is None:
                        buckets[subkey] = {key: stored}
                    else:
                        bucket[key] = stored
                    current = sums.get(subkey)
                    sums[subkey] = (
                        applied if current is None else radd(current, applied)
                    )

    def clear(self) -> None:
        """Remove all keys (registered indexes are emptied too)."""
        self._data.clear()
        for _, buckets, sums in self._indexes.values():
            buckets.clear()
            sums.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Key, Payload]]:
        return iter(self._data.items())

    def keys(self) -> Iterator[Key]:
        return iter(self._data.keys())

    def __iter__(self) -> Iterator[Key]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def is_empty(self) -> bool:
        return not self._data

    def total(self) -> Payload:
        """Sum of all payloads (the full aggregate with no group-by)."""
        return self.ring.sum(self._data.values())

    def same_as(self, other: "Relation") -> bool:
        """Ring-aware equality: same schema, same keys, equal payloads."""
        if self.schema != other.schema or len(self) != len(other):
            return False
        ring = self.ring
        for key, payload in self._data.items():
            if key not in other._data:
                return False
            if not ring.eq(payload, other._data[key]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name}{list(self.schema)}, {len(self)} keys)"

    def pretty(self, limit: int = 20) -> str:
        """A small table rendering, handy in examples and error messages."""
        header = f"{self.name}[{', '.join(self.schema)}]"
        lines = [header]
        for i, (key, payload) in enumerate(sorted(self._data.items(), key=repr)):
            if i >= limit:
                lines.append(f"  ... ({len(self) - limit} more)")
                break
            lines.append(f"  {key} -> {payload}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Ring-level operators (Section 2)
    # ------------------------------------------------------------------

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """``self ⊎ other``: pointwise payload addition."""
        if other.schema != self.schema:
            raise SchemaError(
                f"union over different schemas: {self.schema} vs {other.schema}"
            )
        out = self.copy(name or f"({self.name}+{other.name})")
        out.absorb_bulk(other)
        return out

    def negate(self, name: Optional[str] = None) -> "Relation":
        """The relation mapping each key to the additive inverse payload."""
        out = Relation(name or f"(-{self.name})", self.schema, self.ring)
        neg = self.ring.neg
        out._data = {key: neg(payload) for key, payload in self._data.items()}
        return out

    def join(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """``self ⊗ other``: natural join with payload multiplication.

        Payload order is ``self * other`` (left to right), which matters for
        non-commutative rings such as matrix payloads.
        """
        return self.join_project(
            other, (), None, name or f"({self.name}*{other.name})"
        )

    def _drop_zeros(self, data: Dict[Key, Payload]) -> Dict[Key, Payload]:
        """Remove ring-zero payloads (the deferred form of ``add``'s test)."""
        is_zero = self.ring.is_zero
        return {k: v for k, v in data.items() if not is_zero(v)}

    def join_project(
        self,
        other: "Relation",
        drop: Sequence[str],
        lifting: Optional[Mapping[str, LiftFn]] = None,
        name: Optional[str] = None,
    ) -> "Relation":
        """``⊕_drop (self ⊗ other)``: join with on-the-fly marginalization.

        Semantically ``self.join(other).marginalize(drop, lifting)``, but the
        full join is never materialized: each match is lifted and accumulated
        straight onto its reduced key (the fused form of Section 5's
        "marginalization pushed past joins").  With ``drop`` empty this is a
        plain join — :meth:`join` delegates here.  Output tuples accumulate
        in a plain dict (the output is fresh and index-free); zero payloads
        are dropped in one final sweep.
        """
        merged = merge_schemas(self.schema, other.schema)
        drop_set = set(drop)
        if len(drop_set) != len(tuple(drop)) or not drop_set <= set(merged):
            raise SchemaError(
                f"cannot drop {tuple(drop)} from join schema {merged}"
            )
        out_schema = tuple(a for a in merged if a not in drop_set)
        out = Relation(
            name or f"sum({self.name}*{other.name})", out_schema, self.ring
        )
        ring = self.ring
        mul = ring.mul
        radd = ring.add
        # With nothing to drop, the merged key IS the output key; skip the
        # per-match projector call on that (hot, plain-join) path.
        identity = not drop_set
        keep = key_projector(merged, out_schema)
        lifted = [
            (merged.index(v), lifting[v])
            for v in drop
            if lifting is not None and lifting.get(v) is not None
        ]
        common = tuple(a for a in self.schema if a in set(other.schema))
        data_out: Dict[Key, Payload] = {}

        if not common:
            # Cartesian product; delta optimization (Section 5) avoids
            # materializing these except at small final results.
            for lkey, lpay in self._data.items():
                for rkey, rpay in other._data.items():
                    mkey = lkey + rkey
                    value = mul(lpay, rpay)
                    for position, lift in lifted:
                        value = mul(value, lift(mkey[position]))
                    group = mkey if identity else keep(mkey)
                    current = data_out.get(group)
                    data_out[group] = (
                        value if current is None else radd(current, value)
                    )
            out._data = self._drop_zeros(data_out)
            return out

        # Hash join: index the smaller side on the common attributes — but a
        # side with a registered secondary index on exactly the common
        # attributes is reused as the build side for free.
        self_entry = self._indexes.get(common)
        other_entry = other._indexes.get(common)
        if self_entry is not None and other_entry is None:
            build, probe, index = self, other, self_entry[1]
        elif other_entry is not None and self_entry is None:
            build, probe, index = other, self, other_entry[1]
        else:
            if len(self) <= len(other):
                build, probe = self, other
                entry = self_entry
            else:
                build, probe = other, self
                entry = other_entry
            if entry is not None:
                index = entry[1]
            else:
                build_common = key_projector(build.schema, common)
                index = {}
                for key, payload in build._data.items():
                    index.setdefault(build_common(key), {})[key] = payload
        probe_common = key_projector(probe.schema, common)
        left_is_build = build is self
        right_residual = tuple(a for a in other.schema if a not in set(self.schema))
        left_proj = key_projector(self.schema, self.schema)
        right_proj = key_projector(other.schema, right_residual)
        for pkey, ppay in probe._data.items():
            matches = index.get(probe_common(pkey))
            if not matches:
                continue
            for bkey, bpay in matches.items():
                if left_is_build:
                    lkey, lpay, rkey, rpay = bkey, bpay, pkey, ppay
                else:
                    lkey, lpay, rkey, rpay = pkey, ppay, bkey, bpay
                mkey = left_proj(lkey) + right_proj(rkey)
                value = mul(lpay, rpay)
                for position, lift in lifted:
                    value = mul(value, lift(mkey[position]))
                group = mkey if identity else keep(mkey)
                current = data_out.get(group)
                data_out[group] = (
                    value if current is None else radd(current, value)
                )
        out._data = self._drop_zeros(data_out)
        return out

    def marginalize(
        self,
        variables: Sequence[str],
        lifting: Optional[Mapping[str, LiftFn]] = None,
        name: Optional[str] = None,
    ) -> "Relation":
        """``⊕_{X1} ... ⊕_{Xk} self``: aggregate the given variables away.

        Each marginalized value is lifted into the ring (default: constant
        ``1``) and multiplied onto the payload, innermost variable first, so
        ``marginalize(["X", "Y"])`` equals ``⊕_Y (⊕_X self)``.
        """
        if not variables:
            return self.copy(name or self.name)
        var_set = set(variables)
        if len(var_set) != len(variables):
            raise SchemaError(f"duplicate variables to marginalize: {variables}")
        remaining = tuple(a for a in self.schema if a not in var_set)
        if len(remaining) + len(variables) != len(self.schema):
            raise SchemaError(
                f"variables {variables} not all in schema {self.schema}"
            )
        out = Relation(name or f"sum_{''.join(variables)}({self.name})", remaining, self.ring)
        keep = key_projector(self.schema, remaining)
        mul = self.ring.mul
        radd = self.ring.add
        # Ordered positions of the marginalized variables; lifts applied in
        # the order given (innermost-first semantics).
        lifted = [
            (self.schema.index(v), lifting.get(v) if lifting else None)
            for v in variables
        ]
        lifted = [(p, lift) for p, lift in lifted if lift is not None]
        data_out: Dict[Key, Payload] = {}
        for key, payload in self._data.items():
            for position, lift in lifted:
                payload = mul(payload, lift(key[position]))
            group = keep(key)
            current = data_out.get(group)
            data_out[group] = (
                payload if current is None else radd(current, payload)
            )
        out._data = self._drop_zeros(data_out)
        return out

    def group_by(
        self,
        attrs: Sequence[str],
        lifting: Optional[Mapping[str, LiftFn]] = None,
        name: Optional[str] = None,
    ) -> "Relation":
        """Marginalize every variable *not* in ``attrs`` (schema order)."""
        keep = set(attrs)
        bound = [a for a in self.schema if a not in keep]
        out = self.marginalize(bound, lifting, name)
        if tuple(attrs) != out.schema:
            out = out.reorder(attrs)
        return out

    def project(self, attrs: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Group by ``attrs`` summing payloads (no lifting); order follows ``attrs``."""
        return self.group_by(attrs, None, name)

    def reorder(self, attrs: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Reorder the schema columns to ``attrs`` (a permutation)."""
        if set(attrs) != set(self.schema) or len(attrs) != len(self.schema):
            raise SchemaError(f"{attrs} is not a permutation of {self.schema}")
        proj = key_projector(self.schema, attrs)
        out = Relation(name or self.name, attrs, self.ring)
        out._data = {proj(key): payload for key, payload in self._data.items()}
        return out

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Relation":
        """Rename attributes via ``mapping`` (missing names are unchanged)."""
        schema = tuple(mapping.get(a, a) for a in self.schema)
        out = Relation(name or self.name, schema, self.ring)
        out._data = dict(self._data)
        return out

    def filter(
        self, predicate: Callable[[Key], bool], name: Optional[str] = None
    ) -> "Relation":
        """Keep only keys satisfying ``predicate``."""
        out = Relation(name or f"filter({self.name})", self.schema, self.ring)
        out._data = {k: p for k, p in self._data.items() if predicate(k)}
        return out

    def scale(self, factor: Payload, side: str = "right", name: Optional[str] = None) -> "Relation":
        """Multiply every payload by a constant (left or right for
        non-commutative rings)."""
        mul = self.ring.mul
        out = Relation(name or self.name, self.schema, self.ring)
        for key, payload in self._data.items():
            value = mul(payload, factor) if side == "right" else mul(factor, payload)
            out.add(key, value)
        return out

    def partition(
        self, attr, shards: int, hasher: Callable[[Any], int]
    ) -> list:
        """Hash-partition on an attribute (or compound key) into ``shards``.

        ``attr`` is one attribute name or a sequence of names: fragment
        ``i`` holds exactly the keys whose ``attr`` value — the single
        component, or the tuple of components for a compound key —
        hashes to ``i`` (``hasher(value) % shards``), so fragments have
        pairwise-disjoint supports and their union (``⊎``) is this
        relation — the decomposition property the sharded engine's
        ring-merge relies on.  Fragments start index-free.
        """
        if shards <= 0:
            raise SchemaError("shard count must be positive")
        attrs = (attr,) if isinstance(attr, str) else tuple(attr)
        if not attrs:
            raise SchemaError("a compound partition key must not be empty")
        for name in attrs:
            if name not in self.schema:
                raise SchemaError(
                    f"cannot partition {self.name!r} on {name!r}: "
                    f"not in schema {self.schema}"
                )
        positions = [self.schema.index(name) for name in attrs]
        single = positions[0] if len(positions) == 1 else None
        datas: list = [{} for _ in range(shards)]
        for key, payload in self._data.items():
            value = (
                key[single] if single is not None
                else tuple(key[p] for p in positions)
            )
            datas[hasher(value) % shards][key] = payload
        fragments = []
        for data in datas:
            fragment = Relation(self.name, self.schema, self.ring)
            fragment._data = data
            fragments.append(fragment)
        return fragments

    def indicator(self, attrs: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Static indicator projection ``∃_A R`` (Appendix B).

        Projects keys with non-zero payload onto ``attrs`` and assigns them
        payload ``1``.  For incrementally maintained indicators with
        count-based deltas see :class:`repro.data.indicator.IndicatorView`.
        """
        proj = key_projector(self.schema, attrs)
        out = Relation(name or f"exists_{self.name}", tuple(attrs), self.ring)
        one = self.ring.one
        for key in self._data:
            out._data[proj(key)] = one
        return out
