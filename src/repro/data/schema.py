"""Schema utilities: ordered attribute tuples and key projections.

A schema is an ordered tuple of attribute names.  Keys are plain Python
tuples positionally aligned with the schema.  These helpers precompute
positional projections so the hot join/marginalize loops avoid per-tuple
name lookups.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterable, Sequence, Tuple

__all__ = [
    "SchemaError",
    "as_schema",
    "merge_schemas",
    "key_projector",
    "schema_positions",
]

Schema = Tuple[str, ...]


class SchemaError(ValueError):
    """Raised on schema mismatches (bad unions, unknown attributes, ...)."""


def as_schema(attrs: Iterable[str]) -> Schema:
    """Normalize an iterable of attribute names into a schema tuple.

    Rejects duplicates; attribute order is preserved and significant (keys
    are positional).  Validation is memoized per tuple — relations are
    created per delta on the update path, almost always over a schema seen
    before.
    """
    return _checked_schema(tuple(attrs))


@lru_cache(maxsize=None)
def _checked_schema(schema: Schema) -> Schema:
    if len(set(schema)) != len(schema):
        raise SchemaError(f"duplicate attributes in schema {schema}")
    return schema

def merge_schemas(left: Schema, right: Schema) -> Schema:
    """Schema of the natural join: left attributes, then right-only ones."""
    seen = set(left)
    return left + tuple(a for a in right if a not in seen)


def schema_positions(schema: Schema, attrs: Sequence[str]) -> Tuple[int, ...]:
    """Positions of ``attrs`` inside ``schema`` (raising on unknown names)."""
    try:
        return tuple(schema.index(a) for a in attrs)
    except ValueError as exc:
        raise SchemaError(f"attributes {attrs} not all in schema {schema}") from exc


def key_projector(schema: Schema, attrs: Sequence[str]) -> Callable[[tuple], tuple]:
    """A function projecting a key over ``schema`` onto ``attrs`` (as a tuple).

    Projectors are memoized per ``(schema, attrs)`` pair: schemas in a
    workload are few and fixed, while joins/marginalizations request the
    same projections on every delta, so repeated callers get the same
    closure back without re-deriving positions.
    """
    return _cached_projector(schema, tuple(attrs))


@lru_cache(maxsize=None)
def _cached_projector(schema: Schema, attrs: Tuple[str, ...]) -> Callable[[tuple], tuple]:
    """Build (and cache) the positional projector for one schema/attrs pair.

    The identity projection is special-cased so full-schema projections are
    free, which matters on the hot path of joins on all attributes.
    """
    positions = schema_positions(schema, attrs)
    if positions == tuple(range(len(schema))) and len(attrs) == len(schema):
        return lambda key: key
    if not positions:
        return lambda key: ()
    if len(positions) == 1:
        p0 = positions[0]
        return lambda key: (key[p0],)
    return lambda key: tuple(key[p] for p in positions)
