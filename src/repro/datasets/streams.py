"""Update streams: round-robin interleaved batches (Appendix C.1).

The paper synthesizes data streams from the datasets "by interleaving
insertions to the input relations in a round-robin fashion", grouped into
fixed-size batches.  :func:`round_robin_stream` reproduces that; deletions
(churn) can be mixed in to exercise the additive-inverse paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.data.relation import Relation

__all__ = ["UpdateBatch", "UpdateStream", "round_robin_stream", "single_relation_stream"]


@dataclass
class UpdateBatch:
    """A batch of rows for one relation with a common multiplicity (±1)."""

    relation: str
    rows: List[tuple]
    multiplicity: int = 1

    def __len__(self) -> int:
        return len(self.rows)


class UpdateStream:
    """An ordered sequence of update batches over a fixed set of schemas."""

    def __init__(
        self, schemas: Dict[str, Tuple[str, ...]], batches: Sequence[UpdateBatch]
    ):
        self.schemas = dict(schemas)
        self.batches: List[UpdateBatch] = list(batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_tuples(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def deltas(self, ring) -> Iterator[Relation]:
        """Materialize each batch as a delta relation over ``ring``."""
        for batch in self.batches:
            payload = (
                ring.one if batch.multiplicity == 1
                else ring.from_int(batch.multiplicity)
            )
            yield Relation.from_tuples(
                batch.relation,
                self.schemas[batch.relation],
                ring,
                batch.rows,
                payload,
            )

    def delta_groups(self, ring, group: int) -> Iterator[List[Relation]]:
        """Consecutive deltas in groups of ``group`` (the last may be short).

        The feed for :meth:`FIVMEngine.apply_batch`: a group bundles the
        round-robin interleaved per-relation deltas that a batched trigger
        coalesces into one merged delta per relation.
        """
        if group <= 0:
            raise ValueError("group size must be positive")
        bundle: List[Relation] = []
        for delta in self.deltas(ring):
            bundle.append(delta)
            if len(bundle) == group:
                yield bundle
                bundle = []
        if bundle:
            yield bundle

    def restricted(self, relations: Iterable[str]) -> "UpdateStream":
        """The sub-stream touching only the given relations (ONE scenarios)."""
        keep = set(relations)
        return UpdateStream(
            self.schemas,
            [batch for batch in self.batches if batch.relation in keep],
        )


def round_robin_stream(
    schemas: Dict[str, Tuple[str, ...]],
    tables: Dict[str, List[tuple]],
    batch_size: int,
    relations: Optional[Sequence[str]] = None,
    delete_fraction: float = 0.0,
    seed: int = 0,
) -> UpdateStream:
    """Interleave per-relation insert batches round-robin (paper's streams).

    ``delete_fraction`` > 0 appends, after all inserts, batches deleting that
    fraction of previously inserted rows (sampled uniformly), so engines see
    negative payloads too.
    """
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    names = list(relations if relations is not None else tables)
    queues = {rel: list(tables[rel]) for rel in names}
    offsets = {rel: 0 for rel in names}
    batches: List[UpdateBatch] = []
    while any(offsets[rel] < len(queues[rel]) for rel in names):
        for rel in names:
            start = offsets[rel]
            if start >= len(queues[rel]):
                continue
            rows = queues[rel][start:start + batch_size]
            offsets[rel] = start + len(rows)
            batches.append(UpdateBatch(rel, rows, +1))
    if delete_fraction > 0.0:
        rng = random.Random(seed)
        for rel in names:
            count = int(len(queues[rel]) * delete_fraction)
            if count <= 0:
                continue
            doomed = rng.sample(queues[rel], count)
            for start in range(0, count, batch_size):
                batches.append(
                    UpdateBatch(rel, doomed[start:start + batch_size], -1)
                )
    return UpdateStream(schemas, batches)


def single_relation_stream(
    schemas: Dict[str, Tuple[str, ...]],
    tables: Dict[str, List[tuple]],
    relation: str,
    batch_size: int,
) -> UpdateStream:
    """Inserts to one relation only (the paper's ONE / streaming scenario)."""
    return round_robin_stream(schemas, tables, batch_size, relations=[relation])
