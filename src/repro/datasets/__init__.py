"""Workload generators and update streams for the paper's experiments."""

from repro.datasets import housing, matrices, retailer, twitter
from repro.datasets.base import Workload, chain_spec
from repro.datasets.streams import (
    UpdateBatch,
    UpdateStream,
    round_robin_stream,
    single_relation_stream,
)

__all__ = [
    "Workload",
    "chain_spec",
    "UpdateBatch",
    "UpdateStream",
    "round_robin_stream",
    "single_relation_stream",
    "retailer",
    "housing",
    "twitter",
    "matrices",
]
