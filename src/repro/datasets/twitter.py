"""Synthetic Twitter-style graph for the triangle query (Appendix C).

The paper splits the first 3M edges of the SNAP Higgs-Twitter
follower graph into three equal relations R(A,B), S(B,C), T(C,A) and runs
the triangle count / cofactor query over them.  The SNAP download is not
available offline, so we generate a skewed directed graph (preferential-
attachment-flavoured endpoint sampling) that, like the original, contains
many triangles and heavy-hitter nodes — the properties the cyclic-query
experiments exercise.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.variable_order import VariableOrder
from repro.datasets.base import Workload

__all__ = ["SCHEMAS", "generate", "variable_order"]

SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "R": ("A", "B"),
    "S": ("B", "C"),
    "T": ("C", "A"),
}


def variable_order() -> VariableOrder:
    """The paper's A - B - C chain order for the triangle query."""
    return VariableOrder.from_spec(("A", [("B", [("C", [])])]))


def _skewed_nodes(rng: np.random.Generator, count: int, n_nodes: int, alpha: float) -> np.ndarray:
    """Endpoint sampling with a power-law-ish bias towards low node ids."""
    uniform = rng.random(count)
    nodes = np.floor(n_nodes * uniform ** alpha).astype(int)
    return np.clip(nodes, 0, n_nodes - 1)


def generate(
    n_nodes: int = 300, n_edges: int = 3000, alpha: float = 2.0, seed: int = 11
) -> Workload:
    """Generate the three triangle relations from a skewed edge sample."""
    rng = np.random.default_rng(seed)
    sources = _skewed_nodes(rng, n_edges, n_nodes, alpha)
    targets = _skewed_nodes(rng, n_edges, n_nodes, alpha)
    mask = sources != targets
    edges = list(
        dict.fromkeys(zip(sources[mask].tolist(), targets[mask].tolist()))
    )
    tables: Dict[str, List[tuple]] = {"R": [], "S": [], "T": []}
    for index, edge in enumerate(edges):
        tables[("R", "S", "T")[index % 3]].append(edge)
    return Workload(
        name="twitter",
        schemas=dict(SCHEMAS),
        tables=tables,
        variable_order=variable_order(),
        numeric_variables=("A", "B", "C"),
        metadata={"nodes": n_nodes, "edges": len(edges), "alpha": alpha},
    )
