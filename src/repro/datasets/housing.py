"""Synthetic Housing workload: the paper's star-schema price market [42].

Six relations joined on the single common attribute ``postcode``; 27
attributes total.  The query is q-hierarchical, so F-IVM processes
single-tuple updates in O(1) (Section 7).  The scale factor grows the
multiplicity of House/Shop/Restaurant rows per postcode while keeping one
row per postcode in the other relations, so the listing join result grows
cubically in scale while the factorized representation grows linearly —
the contrast Figure 8 (right) measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.variable_order import VariableOrder
from repro.datasets.base import Workload, chain_spec

__all__ = ["SCHEMAS", "generate", "variable_order"]

SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "House": (
        "postcode", "livingarea", "price", "nbbedrooms", "nbbathrooms",
        "kitchensize", "house", "flat", "unknown", "garden", "parking",
    ),
    "Shop": (
        "postcode", "openinghoursshop", "pricerangeshop", "sainsburys",
        "tesco", "ms",
    ),
    "Institution": ("postcode", "typeeducation", "sizeinstitution"),
    "Restaurant": ("postcode", "openinghoursrest", "pricerangerest"),
    "Demographics": (
        "postcode", "averagesalary", "crimesperyear", "unemployment",
        "nbhospitals",
    ),
    "Transport": (
        "postcode", "nbbuslines", "nbtrainstations", "distancecitycentre",
    ),
}

ALL_VARIABLES: Tuple[str, ...] = tuple(
    dict.fromkeys(attr for schema in SCHEMAS.values() for attr in schema)
)

#: Relations whose per-postcode multiplicity grows with the scale factor.
SCALING_RELATIONS = ("House", "Shop", "Restaurant")


def variable_order() -> VariableOrder:
    """Star order: postcode on top, one per-relation attribute chain below."""
    chains = [chain_spec(SCHEMAS[rel][1:]) for rel in SCHEMAS]
    return VariableOrder.from_spec(("postcode", chains))


def generate(
    scale: int = 1, postcodes: int = 100, seed: int = 7
) -> Workload:
    """Generate a Housing instance with the given scale factor."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    codes = list(range(1, postcodes + 1))
    tables: Dict[str, List[tuple]] = {rel: [] for rel in SCHEMAS}

    for rel, schema in SCHEMAS.items():
        width = len(schema) - 1  # attributes beyond postcode
        per_postcode = scale if rel in SCALING_RELATIONS else 1
        for code in codes:
            values = rng.integers(1, 50, size=(per_postcode, width))
            for row in values:
                tables[rel].append((code, *(int(v) for v in row)))

    return Workload(
        name="housing",
        schemas=dict(SCHEMAS),
        tables=tables,
        variable_order=variable_order(),
        numeric_variables=ALL_VARIABLES,
        metadata={"scale": scale, "postcodes": postcodes},
    )
