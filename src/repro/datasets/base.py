"""Shared workload structure for the benchmark datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.variable_order import VariableOrder
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["Workload", "chain_spec"]


def chain_spec(variables: Sequence[str], tail=None):
    """A nested single-child variable-order spec for a chain of variables.

    ``tail`` (another spec) is attached below the last variable; used to
    hang relation-local attribute chains under join variables.
    """
    spec = tail
    for var in reversed(list(variables)):
        spec = (var, [spec]) if spec is not None else (var, [])
    if spec is None:
        raise ValueError("empty chain")
    return spec


@dataclass
class Workload:
    """A dataset: schemas, generated rows, and its canonical variable order.

    Rows are plain tuples; payloads are attached when a concrete engine
    materializes the workload over its ring (so one generated dataset serves
    COUNT, cofactor, and relational-payload runs alike).
    """

    name: str
    schemas: Dict[str, Tuple[str, ...]]
    tables: Dict[str, List[tuple]]
    variable_order: VariableOrder
    numeric_variables: Tuple[str, ...] = ()
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.tables.values())

    def largest_relation(self) -> str:
        return max(self.tables, key=lambda rel: len(self.tables[rel]))

    def database(self, ring, relations: Optional[Sequence[str]] = None) -> Database:
        """Materialize (a subset of) the tables over a ring, payload 1."""
        names = relations if relations is not None else list(self.schemas)
        db = Database()
        for rel in names:
            db.add(
                Relation.from_tuples(
                    rel, self.schemas[rel], ring, self.tables[rel]
                )
            )
        return db

    def empty_database(self, ring) -> Database:
        """All relations present but empty (the streaming start state)."""
        db = Database()
        for rel, schema in self.schemas.items():
            db.add(Relation(rel, schema, ring))
        return db

    def preloaded_database(self, ring, streaming: Sequence[str]) -> Database:
        """Every table loaded (payload 1) except the ``streaming`` ones,
        which are present but empty — the ONE-scenario start state, where
        dimension tables are static and only the fact relation streams."""
        streaming_set = set(streaming)
        db = self.empty_database(ring)
        for rel, rows in self.tables.items():
            if rel in streaming_set:
                continue
            target = db.relation(rel)
            for row in rows:
                target.add(row, ring.one)
        return db
