"""Dense matrices and low-rank updates for the matrix chain experiments.

Matrices are modelled two ways (matching the paper's two runtimes):

* as relations mapping index pairs to scalar payloads, consumed by the
  ring-based engines ("DBToaster hash map" runtime);
* as numpy arrays, consumed by the dense engines (the "Octave"/BLAS
  runtime).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.rings.numeric import REAL_RING

__all__ = [
    "random_matrix",
    "matrix_as_relation",
    "relation_as_matrix",
    "vector_as_relation",
    "row_update",
    "rank_r_update",
]


def random_matrix(n_rows: int, n_cols: int, rng: np.random.Generator) -> np.ndarray:
    """A dense matrix with entries uniform in (-1, 1), as in Section 7."""
    return rng.uniform(-1.0, 1.0, size=(n_rows, n_cols))


def matrix_as_relation(
    name: str, matrix: np.ndarray, row_var: str, col_var: str, ring=REAL_RING
) -> Relation:
    """Encode a matrix as a binary relation with scalar payloads."""
    rel = Relation(name, (row_var, col_var), ring)
    rows, cols = matrix.shape
    for i in range(rows):
        row = matrix[i]
        for j in range(cols):
            value = float(row[j])
            if value != 0.0:
                rel.add((i, j), value)
    return rel


def relation_as_matrix(
    rel: Relation, shape: Tuple[int, int]
) -> np.ndarray:
    """Decode a binary relation (row, col) → value back into a dense array."""
    out = np.zeros(shape)
    for (i, j), value in rel.items():
        out[int(i), int(j)] = value
    return out


def vector_as_relation(
    name: str, vector: np.ndarray, var: str, ring=REAL_RING
) -> Relation:
    """Encode a vector as a unary relation (one factor of a rank-1 delta)."""
    rel = Relation(name, (var,), ring)
    for i, value in enumerate(vector):
        value = float(value)
        if value != 0.0:
            rel.add((i,), value)
    return rel


def row_update(
    n: int, row: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """A one-row change as a rank-1 pair: ``δA = e_row · vᵀ``."""
    u = np.zeros(n)
    u[row] = 1.0
    v = rng.uniform(-1.0, 1.0, size=n)
    return u, v


def rank_r_update(
    n: int, rank: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """A rank-r change as r rank-1 terms ``δA = Σ uᵢ vᵢᵀ`` (Section 5)."""
    return [
        (rng.uniform(-1.0, 1.0, size=n), rng.uniform(-1.0, 1.0, size=n))
        for _ in range(rank)
    ]
