"""Synthetic Retailer workload: the paper's snowflake decision-support schema.

The real Retailer dataset (84M inventory rows, proprietary) is replaced by a
deterministic generator with the same *shape*: one large fact relation
``Inventory`` joining three dimension hierarchies — ``Item`` (on product),
``Weather`` (on location and date), and ``Location`` (on location) with its
lookup ``Census`` (on zip) — 43 attributes in total, natural join acyclic.
The canonical variable order follows the paper's
``location - { date - { product id }, zip }`` with each relation's local
attributes forming a root-to-leaf chain (Appendix C.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.variable_order import VariableOrder
from repro.datasets.base import Workload, chain_spec

__all__ = ["SCHEMAS", "generate", "variable_order"]

SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "Inventory": ("locn", "dateid", "ksn", "inventoryunits"),
    "Item": ("ksn", "subcategory", "category", "categoryCluster", "prize"),
    "Weather": (
        "locn", "dateid", "rain", "snow", "maxtemp", "mintemp",
        "meanwind", "thunder",
    ),
    "Location": (
        "locn", "zip", "rgn_cd", "clim_zn_nbr", "tot_area_sq_ft",
        "sell_area_sq_ft", "avghhi", "supertargetdistance",
        "supertargetdrivetime", "targetdistance", "targetdrivetime",
        "walmartdistance", "walmartdrivetime",
        "walmartsupercenterdistance", "walmartsupercenterdrivetime",
    ),
    "Census": (
        "zip", "population", "white", "asian", "pacific", "black",
        "medianage", "occupiedhouseunits", "houseunits", "families",
        "households", "husbwife", "males", "females",
        "householdschildren", "hispanic",
    ),
}

#: All 43 variables in the canonical (variable-order) sequence.
ALL_VARIABLES: Tuple[str, ...] = tuple(
    dict.fromkeys(attr for schema in SCHEMAS.values() for attr in schema)
)


def variable_order() -> VariableOrder:
    """The paper's Retailer variable order (each relation on one path)."""
    inventory_chain = chain_spec(["inventoryunits"])
    item_chain = chain_spec(SCHEMAS["Item"][1:])
    weather_chain = chain_spec(SCHEMAS["Weather"][2:])
    location_chain = chain_spec(SCHEMAS["Location"][2:])
    census_chain = chain_spec(SCHEMAS["Census"][1:])
    spec = (
        "locn",
        [
            (
                "dateid",
                [
                    ("ksn", [inventory_chain, item_chain]),
                    weather_chain,
                ],
            ),
            ("zip", [location_chain, census_chain]),
        ],
    )
    return VariableOrder.from_spec(spec)


def generate(scale: float = 1.0, seed: int = 42) -> Workload:
    """Generate a Retailer instance; ``scale`` drives the fact-table size.

    At scale 1: 10 locations × 30 dates × 120 products, 3000 inventory rows.
    Values are small integers so every payload ring (ℤ, ℝ, cofactor,
    relational) can consume the same rows.
    """
    rng = np.random.default_rng(seed)
    n_locations = max(3, int(round(10 * scale ** 0.5)))
    n_dates = max(5, int(round(30 * scale ** 0.5)))
    n_products = max(10, int(round(120 * scale ** 0.5)))
    n_zips = max(2, n_locations // 2 + 1)
    n_inventory = max(20, int(round(3000 * scale)))

    def ints(count: int, low: int, high: int) -> np.ndarray:
        return rng.integers(low, high, size=count)

    tables: Dict[str, List[tuple]] = {}

    locations = list(range(1, n_locations + 1))
    zips = list(range(1, n_zips + 1))
    dates = list(range(1, n_dates + 1))
    products = list(range(1, n_products + 1))

    # Fact relation: random (locn, dateid, ksn) with small unit counts;
    # dedup so keys are unique (multiplicities stay in payloads).
    seen = set()
    inventory: List[tuple] = []
    while len(inventory) < n_inventory:
        locn = int(rng.choice(locations))
        dateid = int(rng.choice(dates))
        ksn = int(rng.choice(products))
        units = int(rng.integers(1, 20))
        key = (locn, dateid, ksn, units)
        if key not in seen:
            seen.add(key)
            inventory.append(key)
    tables["Inventory"] = inventory

    tables["Item"] = [
        (
            ksn,
            int(rng.integers(1, 9)),      # subcategory
            int(rng.integers(1, 5)),      # category
            int(rng.integers(1, 4)),      # categoryCluster
            int(rng.integers(1, 100)),    # prize
        )
        for ksn in products
    ]

    tables["Weather"] = [
        (
            locn,
            dateid,
            int(rng.integers(0, 2)),      # rain
            int(rng.integers(0, 2)),      # snow
            int(rng.integers(10, 40)),    # maxtemp
            int(rng.integers(-10, 15)),   # mintemp
            int(rng.integers(0, 30)),     # meanwind
            int(rng.integers(0, 2)),      # thunder
        )
        for locn in locations
        for dateid in dates
    ]

    tables["Location"] = [
        (
            locn,
            int(rng.choice(zips)),
            int(rng.integers(1, 10)),
            int(rng.integers(1, 6)),
            int(rng.integers(10, 100)),
            int(rng.integers(5, 80)),
            int(rng.integers(20, 200)),
            *(int(x) for x in ints(8, 1, 50)),
        )
        for locn in locations
    ]

    tables["Census"] = [
        (zip_code, *(int(x) for x in ints(15, 1, 1000)))
        for zip_code in zips
    ]

    return Workload(
        name="retailer",
        schemas=dict(SCHEMAS),
        tables=tables,
        variable_order=variable_order(),
        numeric_variables=ALL_VARIABLES,
        metadata={
            "scale": scale,
            "locations": n_locations,
            "dates": n_dates,
            "products": n_products,
            "zips": n_zips,
        },
    )
