"""Learning linear regression models over joins (Section 6.2).

The training dataset is the (never materialized) join of the database
relations; the sufficient statistics for least squares — count, per-variable
sums, and the cofactor matrix of pairwise products — are maintained as one
compound payload in the degree-m matrix ring.  Computing them over all
variables "suffices to learn linear regression models over any label and set
of features" [36]: training restricts the maintained moment matrix, so the
convergence loop never touches the data again.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import FIVMEngine
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewTree
from repro.data.database import Database
from repro.data.relation import Relation
from repro.rings.cofactor import CofactorRing, CofactorTriple
from repro.rings.lifting import Lifting

__all__ = ["cofactor_query", "CofactorModel", "TrainedModel", "least_squares_from_moments"]


def cofactor_query(
    name: str,
    relations: Mapping[str, Sequence[str]],
    numeric_variables: Sequence[str],
    free: Iterable[str] = (),
) -> Query:
    """A query maintaining the compound (c, s, Q) aggregate over a join.

    ``numeric_variables`` fixes the model's variable indexing: position j in
    the maintained vectors/matrices is ``numeric_variables[j]``.  Variables
    listed as ``free`` are group-by keys (one model per group) and must not
    appear among the numeric variables.
    """
    free = tuple(free)
    numeric = tuple(numeric_variables)
    overlap = set(free) & set(numeric)
    if overlap:
        raise ValueError(
            f"group-by variables {sorted(overlap)} cannot also be model "
            "variables"
        )
    ring = CofactorRing(len(numeric))
    lifting = Lifting(ring)
    for index, variable in enumerate(numeric):
        lifting.set(variable, ring.lift(index))
    return Query(name, relations, free=free, ring=ring, lifting=lifting)


class TrainedModel:
    """Parameters of a trained linear model ``label ≈ θ₀ + Σ θᵢ·featureᵢ``."""

    def __init__(
        self,
        features: Tuple[str, ...],
        label: str,
        theta: np.ndarray,
        iterations: int,
    ):
        self.features = features
        self.label = label
        self.theta = theta  # [bias, per-feature...]
        self.iterations = iterations

    def predict(self, values: Mapping[str, float]) -> float:
        total = float(self.theta[0])
        for weight, feature in zip(self.theta[1:], self.features):
            total += float(weight) * float(values[feature])
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(
            f"{w:.4g}*{f}" for w, f in zip(self.theta[1:], self.features)
        )
        return f"{self.label} ≈ {self.theta[0]:.4g} + {terms}"


def least_squares_from_moments(
    moments: np.ndarray,
    feature_idx: Sequence[int],
    label_idx: int,
    ridge: float = 0.0,
) -> np.ndarray:
    """Solve the normal equations from an extended moment matrix.

    ``moments`` is the (m+1)×(m+1) matrix with row/col 0 the constant
    feature.  Returns θ (bias first).  ``ridge`` adds λI for stability on
    collinear data (the bias is not regularized).
    """
    cols = [0] + [i + 1 for i in feature_idx]
    a = moments[np.ix_(cols, cols)].copy()
    b = moments[np.ix_(cols, [label_idx + 1])].ravel()
    if ridge > 0.0:
        a[1:, 1:] += ridge * np.eye(len(feature_idx))
    theta, *_ = np.linalg.lstsq(a, b, rcond=None)
    return theta


class CofactorModel:
    """Maintains cofactor matrices over a join and trains models from them."""

    def __init__(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]],
        numeric_variables: Sequence[str],
        free: Iterable[str] = (),
        order: Optional[VariableOrder] = None,
        updatable: Optional[Iterable[str]] = None,
        tree: Optional[ViewTree] = None,
        db: Optional[Database] = None,
        compiled: bool = True,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
    ):
        self.query = cofactor_query(name, relations, numeric_variables, free)
        self.numeric_variables = tuple(numeric_variables)
        self._index: Dict[str, int] = {
            v: i for i, v in enumerate(self.numeric_variables)
        }
        self.engine = FIVMEngine(
            self.query, order=order, updatable=updatable, tree=tree, db=db,
            compiled=compiled, backend=backend, storage=storage,
        )

    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        return self.engine.apply_update(delta)

    def result(self) -> Relation:
        return self.engine.result()

    def view_sizes(self) -> Dict[str, int]:
        return self.engine.view_sizes()

    def triple(self, key: tuple = ()) -> CofactorTriple:
        """The maintained (c, s, Q) for a group key (() for global)."""
        return self.engine.result().payload(key)

    def moment_matrix(self, key: tuple = ()) -> np.ndarray:
        """The extended moment matrix ``MᵀM`` (constant column included)."""
        return self.triple(key).moment_matrix()

    # ------------------------------------------------------------------

    def solve(
        self,
        features: Sequence[str],
        label: str,
        key: tuple = (),
        ridge: float = 0.0,
    ) -> TrainedModel:
        """Closed-form least squares over the maintained statistics."""
        feature_idx = [self._index[f] for f in features]
        theta = least_squares_from_moments(
            self.moment_matrix(key), feature_idx, self._index[label], ridge
        )
        return TrainedModel(tuple(features), label, theta, iterations=0)

    def gradient_descent(
        self,
        features: Sequence[str],
        label: str,
        key: tuple = (),
        step_size: Optional[float] = None,
        max_iterations: int = 10_000,
        tolerance: float = 1e-9,
    ) -> TrainedModel:
        """Batch gradient descent using only the moment matrix (Section 6.2).

        Each step is O(m²) — ``θ := θ − α (Aθ − b)`` with A and b read from
        the maintained statistics — independent of the training-set size,
        the property that makes in-database learning fast.
        """
        moments = self.moment_matrix(key)
        count = moments[0, 0]
        if count <= 0:
            raise ValueError("cannot train on an empty join result")
        cols = [0] + [self._index[f] + 1 for f in features]
        a = moments[np.ix_(cols, cols)] / count
        b = moments[np.ix_(cols, [self._index[label] + 1])].ravel() / count
        # 1/L step size from the largest eigenvalue of the (PSD) system.
        if step_size is None:
            eigenvalues = np.linalg.eigvalsh(a)
            largest = float(eigenvalues[-1])
            step_size = 1.0 / largest if largest > 0 else 1.0
        theta = np.zeros(len(cols))
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            gradient = a @ theta - b
            theta = theta - step_size * gradient
            if float(np.linalg.norm(gradient)) < tolerance:
                break
        return TrainedModel(tuple(features), label, theta, iterations)
