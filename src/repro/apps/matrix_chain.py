"""Matrix chain multiplication as a join-aggregate query (Section 6.1).

A chain ``A = A₁ ··· A_k`` becomes the query::

    A[X₁, X_{k+1}] = ⊕_{X₂} ... ⊕_{X_k}  ⊗_i  Aᵢ[Xᵢ, Xᵢ₊₁]

with matrices encoded as binary relations carrying scalar payloads.  The
optimal variable order corresponds to the textbook optimal parenthesization
(dynamic program included); rank-1 changes ``δA = u vᵀ`` propagate as
factorizable updates in O(p²) instead of O(p³) — the LINVIEW [33] idea that
F-IVM subsumes.

Two runtimes mirror the paper's Figure 6 setup:

* :class:`MatrixChainIVM` — the ring-relational engine (the "DBToaster hash
  map" runtime), supporting arbitrary chain lengths and update targets;
* :class:`DenseChainFIVM` / :class:`DenseChainFirstOrder` /
  :class:`DenseChainReeval` — numpy/BLAS dense engines (the "Octave"
  runtime) for ``A = A₁A₂A₃`` under updates to ``A₂``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import FIVMEngine
from repro.core.factorized_update import FactorizedUpdate
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.data.database import Database
from repro.datasets.matrices import (
    matrix_as_relation,
    relation_as_matrix,
    vector_as_relation,
)
from repro.rings.numeric import REAL_RING

__all__ = [
    "matrix_chain_order",
    "chain_variable_order",
    "chain_query",
    "MatrixChainIVM",
    "DenseChainFIVM",
    "DenseChainFirstOrder",
    "DenseChainReeval",
]


def matrix_chain_order(dims: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """The textbook matrix-chain DP [13]: cost table and split points.

    ``dims`` has length k+1 for a chain of k matrices (Aᵢ is
    dims[i-1]×dims[i]).  Returns (m, s) with m[i][j] the minimal scalar
    multiplication count for Aᵢ..Aⱼ and s[i][j] the optimal split.
    """
    k = len(dims) - 1
    if k < 1:
        raise ValueError("need at least one matrix")
    m = np.zeros((k + 1, k + 1))
    s = np.zeros((k + 1, k + 1), dtype=int)
    for length in range(2, k + 1):
        for i in range(1, k - length + 2):
            j = i + length - 1
            m[i][j] = np.inf
            for split in range(i, j):
                cost = (
                    m[i][split]
                    + m[split + 1][j]
                    + dims[i - 1] * dims[split] * dims[j]
                )
                if cost < m[i][j]:
                    m[i][j] = cost
                    s[i][j] = split
    return m, s


def chain_variable_order(
    k: int, dims: Optional[Sequence[int]] = None
) -> VariableOrder:
    """Variable order for a k-matrix chain: free X₁, X_{k+1} on top, then
    the (optimal, if dims given, else balanced) split tree of bound indices.

    For k = 4 this reproduces Example 6.1's ω = X₁ - X₅ - X₃ - {X₂, X₄}.
    """
    split_table = None
    if dims is not None:
        _, split_table = matrix_chain_order(dims)

    def split_of(i: int, j: int) -> int:
        if split_table is not None:
            return int(split_table[i][j])
        return (i + j) // 2

    def bound_tree(i: int, j: int):
        if i >= j:
            return None
        s = split_of(i, j)
        children = [t for t in (bound_tree(i, s), bound_tree(s + 1, j)) if t]
        return (f"X{s + 1}", children)

    inner = bound_tree(1, k)
    top = (f"X{k + 1}", [inner] if inner else [])
    return VariableOrder.from_spec(("X1", [top]))


def chain_query(k: int, ring=REAL_RING) -> Query:
    """The chain query over relations A1..Ak with free endpoints."""
    relations = {f"A{i}": (f"X{i}", f"X{i + 1}") for i in range(1, k + 1)}
    return Query(
        f"chain{k}", relations, free=("X1", f"X{k + 1}"), ring=ring
    )


class MatrixChainIVM:
    """Ring-relational maintenance of a matrix chain product."""

    def __init__(
        self,
        matrices: Sequence[np.ndarray],
        updatable: Optional[Sequence[str]] = None,
        use_optimal_order: bool = True,
        ring=REAL_RING,
        compiled: bool = True,
        backend=None,
    ):
        self.k = len(matrices)
        if self.k < 1:
            raise ValueError("need at least one matrix")
        dims = [matrices[0].shape[0]]
        for index, matrix in enumerate(matrices):
            if matrix.shape[0] != dims[-1]:
                raise ValueError(f"dimension mismatch at matrix {index + 1}")
            dims.append(matrix.shape[1])
        self.dims = tuple(dims)
        self.query = chain_query(self.k, ring)
        order = chain_variable_order(
            self.k, self.dims if use_optimal_order else None
        )
        db = Database(
            matrix_as_relation(f"A{i + 1}", matrix, f"X{i + 1}", f"X{i + 2}", ring)
            for i, matrix in enumerate(matrices)
        )
        self.engine = FIVMEngine(
            self.query, order, updatable=updatable, db=db, compiled=compiled,
            backend=backend,
        )

    def apply_rank_one(self, index: int, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``δA_index = u vᵀ`` as a factorizable update."""
        name = f"A{index}"
        update = FactorizedUpdate.rank_one(
            name,
            [
                vector_as_relation(f"{name}_u", u, f"X{index}", self.query.ring),
                vector_as_relation(f"{name}_v", v, f"X{index + 1}", self.query.ring),
            ],
        )
        self.engine.apply_factorized_update(update)

    def apply_rank_r(
        self, index: int, terms: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Apply a rank-r update as a sequence of rank-1 terms."""
        for u, v in terms:
            self.apply_rank_one(index, u, v)

    def apply_dense_delta(self, index: int, delta: np.ndarray) -> None:
        """Apply an arbitrary delta matrix in listing form (no factorization)."""
        name = f"A{index}"
        self.engine.apply_update(
            matrix_as_relation(
                name, delta, f"X{index}", f"X{index + 1}", self.query.ring
            )
        )

    def result_matrix(self) -> np.ndarray:
        """The maintained product as a dense array."""
        return relation_as_matrix(
            self.engine.result(), (self.dims[0], self.dims[-1])
        )


class DenseChainFIVM:
    """Dense F-IVM for A₁A₂A₃ with rank-1 updates to A₂ (LINVIEW).

    Propagates ``u₁ = A₁u`` and ``v₁ = vᵀA₃`` and adds the outer product —
    two matrix-vector products plus an O(n²) result update.
    """

    def __init__(self, a1: np.ndarray, a2: np.ndarray, a3: np.ndarray):
        self.a1 = a1.copy()
        self.a2 = a2.copy()
        self.a3 = a3.copy()
        self.result = a1 @ a2 @ a3

    def apply_rank_one(self, u: np.ndarray, v: np.ndarray) -> None:
        u1 = self.a1 @ u
        v1 = v @ self.a3
        self.result += np.outer(u1, v1)
        self.a2 += np.outer(u, v)

    def apply_rank_r(self, terms: Sequence[Tuple[np.ndarray, np.ndarray]]) -> None:
        for u, v in terms:
            self.apply_rank_one(u, v)


class DenseChainFirstOrder:
    """Dense 1-IVM: recompute ``δA = A₁ δA₂ A₃`` per update.

    For a one-row change the left product is an outer product (O(n²)) but
    the right product is a full matrix-matrix multiplication — the single
    O(nᵅ) multiply the paper attributes to 1-IVM.
    """

    def __init__(self, a1: np.ndarray, a2: np.ndarray, a3: np.ndarray):
        self.a1 = a1.copy()
        self.a2 = a2.copy()
        self.a3 = a3.copy()
        self.result = a1 @ a2 @ a3

    def apply_rank_one(self, u: np.ndarray, v: np.ndarray) -> None:
        delta12 = np.outer(self.a1 @ u, v)
        self.result += delta12 @ self.a3
        self.a2 += np.outer(u, v)

    def apply_dense_delta(self, delta: np.ndarray) -> None:
        self.result += (self.a1 @ delta) @ self.a3
        self.a2 += delta


class DenseChainReeval:
    """Dense re-evaluation: two full matrix products per update."""

    def __init__(self, a1: np.ndarray, a2: np.ndarray, a3: np.ndarray):
        self.a1 = a1.copy()
        self.a2 = a2.copy()
        self.a3 = a3.copy()
        self.result = a1 @ a2 @ a3

    def apply_rank_one(self, u: np.ndarray, v: np.ndarray) -> None:
        self.a2 += np.outer(u, v)
        self.result = self.a1 @ self.a2 @ self.a3

    def apply_dense_delta(self, delta: np.ndarray) -> None:
        self.a2 += delta
        self.result = self.a1 @ self.a2 @ self.a3
