"""Inference in probabilistic graphical models over view trees.

The paper's closing line names "inference in probabilistic graphical
models" as the next application of the framework; this module implements
it.  A discrete factor graph is encoded as a database: one relation per
factor, keys = assignments of the factor's variables, payloads = potential
values.  Then:

* the **partition function** Z is the query ``⊕_all_vars ⊗ factors`` over
  the ℝ ring — exactly a COUNT query whose payloads happen to be
  potentials, evaluated by variable elimination along the variable order;
* **marginals** are the same query with the target variable free;
* **MAP values** swap in the max-product semiring (Appendix A) — same view
  tree, different ring.

Because ℝ has additive inverses, sum-product inference is *incrementally
maintainable*: changing a potential entry (e.g. conditioning on evidence by
zeroing rows of a unary factor) is a payload delta, and F-IVM propagates it
through the elimination tree instead of re-running inference.  Max-product
lacks inverses, so MAP inference supports static evaluation and insert-only
refinement.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.engine import FIVMEngine
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import build_view_tree
from repro.data.database import Database
from repro.data.relation import Relation
from repro.rings.numeric import MaxProductSemiring, RealRing

__all__ = ["FactorGraph", "SumProductInference", "MaxProductInference"]


class FactorGraph:
    """A discrete factor graph: variables with finite domains and factors."""

    def __init__(self):
        self.domains: Dict[str, Tuple[object, ...]] = {}
        self.factors: Dict[str, Tuple[Tuple[str, ...], Dict[tuple, float]]] = {}

    def add_variable(self, name: str, domain: Iterable[object]) -> "FactorGraph":
        if name in self.domains:
            raise ValueError(f"variable {name!r} already declared")
        domain = tuple(domain)
        if not domain:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        self.domains[name] = domain
        return self

    def add_factor(
        self,
        name: str,
        variables: Sequence[str],
        table: Mapping[tuple, float],
    ) -> "FactorGraph":
        """Register a potential table over ``variables``.

        Missing assignments are implicitly zero; potentials must be
        non-negative (a requirement of the max-product semiring and of
        probabilistic semantics).
        """
        if name in self.factors:
            raise ValueError(f"factor {name!r} already declared")
        unknown = [v for v in variables if v not in self.domains]
        if unknown:
            raise ValueError(f"undeclared variables {unknown}")
        for assignment, value in table.items():
            if len(assignment) != len(variables):
                raise ValueError(
                    f"assignment {assignment} does not match {variables}"
                )
            if value < 0:
                raise ValueError("potentials must be non-negative")
        self.factors[name] = (tuple(variables), dict(table))
        return self

    # ------------------------------------------------------------------

    def schemas(self) -> Dict[str, Tuple[str, ...]]:
        return {name: vars_ for name, (vars_, _) in self.factors.items()}

    def database(self, ring) -> Database:
        db = Database()
        for name, (variables, table) in self.factors.items():
            rel = Relation(name, variables, ring)
            for assignment, value in table.items():
                rel.add(assignment, float(value))
            db.add(rel)
        return db

    def brute_force(
        self, free: Sequence[str] = (), mode: str = "sum"
    ) -> Dict[tuple, float]:
        """Exhaustive reference: sum/max over all complete assignments."""
        import itertools

        names = list(self.domains)
        out: Dict[tuple, float] = {}
        for values in itertools.product(*(self.domains[v] for v in names)):
            binding = dict(zip(names, values))
            weight = 1.0
            for variables, table in self.factors.values():
                weight *= table.get(tuple(binding[v] for v in variables), 0.0)
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            key = tuple(binding[v] for v in free)
            if mode == "sum":
                out[key] = out.get(key, 0.0) + weight
            else:
                out[key] = max(out.get(key, 0.0), weight)
        return out


class SumProductInference:
    """Exact sum-product inference, incrementally maintained by F-IVM."""

    def __init__(
        self,
        graph: FactorGraph,
        free: Sequence[str] = (),
        order: Optional[VariableOrder] = None,
    ):
        self.graph = graph
        self.ring = RealRing(tolerance=1e-12)
        self.query = Query(
            "sum_product", graph.schemas(), free=tuple(free), ring=self.ring
        )
        self.engine = FIVMEngine(
            self.query, order=order, db=graph.database(self.ring)
        )
        self._shadow = graph.database(self.ring)

    def partition_function(self) -> float:
        """Z (only for queries with no free variables)."""
        if self.query.free:
            raise ValueError("partition function needs free=()")
        return self.engine.result().payload(())

    def unnormalized_marginal(self) -> Relation:
        return self.engine.result()

    def marginal(self) -> Dict[tuple, float]:
        """The normalized distribution over the free variables."""
        contents = dict(self.engine.result().items())
        total = sum(contents.values())
        if total <= 0:
            raise ValueError("all-zero distribution (contradictory evidence?)")
        return {key: value / total for key, value in contents.items()}

    def update_potential(
        self, factor: str, assignment: tuple, new_value: float
    ) -> None:
        """Change one potential entry; the delta propagates incrementally."""
        if new_value < 0:
            raise ValueError("potentials must be non-negative")
        current = self._shadow.relation(factor).payload(tuple(assignment))
        delta_value = new_value - current
        if delta_value == 0.0:
            return
        schema = self.query.schema_of(factor)
        delta = Relation(factor, schema, self.ring, {tuple(assignment): delta_value})
        self.engine.apply_update(delta)
        self._shadow.apply_update(delta.copy())

    def condition(self, variable: str, value: object) -> None:
        """Condition on evidence ``variable = value``.

        Zeroes every potential entry inconsistent with the evidence in the
        factors mentioning the variable — a batch of payload deltas, each
        maintained incrementally.
        """
        if variable not in self.graph.domains:
            raise KeyError(f"unknown variable {variable!r}")
        for factor, (variables, _) in self.graph.factors.items():
            if variable not in variables:
                continue
            position = variables.index(variable)
            shadow = self._shadow.relation(factor)
            doomed = [
                key for key in shadow.keys() if key[position] != value
            ]
            for key in doomed:
                self.update_potential(factor, key, 0.0)


class MaxProductInference:
    """Exact MAP inference via the max-product semiring (static/insert-only)."""

    def __init__(
        self,
        graph: FactorGraph,
        order: Optional[VariableOrder] = None,
    ):
        self.graph = graph
        self.ring = MaxProductSemiring()
        self.query = Query(
            "max_product", graph.schemas(), free=(), ring=self.ring
        )
        self.order = order or VariableOrder.auto(self.query)
        self._db = graph.database(self.ring)

    def map_value(self) -> float:
        """The maximal product of potentials over complete assignments."""
        tree = build_view_tree(self.query, self.order)
        result = tree.evaluate(self._db)[tree.root.name]
        return result.payload(())

    def max_marginal(self, variable: str) -> Dict[object, float]:
        """Max-marginal of one variable (its best achievable weight)."""
        query = Query(
            "max_marginal", self.graph.schemas(), free=(variable,),
            ring=self.ring,
        )
        tree = build_view_tree(query)
        result = tree.evaluate(self._db)[tree.root.name]
        return {key[0]: value for key, value in result.items()}

    def map_assignment(self) -> Tuple[Dict[str, object], float]:
        """A maximizing assignment, decoded variable by variable.

        Conditions each variable on its max-marginal argmax in turn; exact
        regardless of ties (re-evaluating after each conditioning keeps the
        remaining problem consistent).
        """
        assignment: Dict[str, object] = {}
        db = self.graph.database(self.ring)
        best = self.map_value()
        for variable in self.graph.domains:
            query = Query(
                "decode", self.graph.schemas(), free=(variable,), ring=self.ring
            )
            tree = build_view_tree(query)
            result = tree.evaluate(db)[tree.root.name]
            choice = max(result.items(), key=lambda item: item[1])[0][0]
            assignment[variable] = choice
            # Condition db on the choice.
            for factor, (variables, _) in self.graph.factors.items():
                if variable not in variables:
                    continue
                position = variables.index(variable)
                contents = db.relation(factor)
                doomed = [k for k in contents.keys() if k[position] != choice]
                for key in doomed:
                    del contents._data[key]
        return assignment, best
