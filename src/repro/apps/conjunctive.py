"""Conjunctive query evaluation with three result representations (§6.3).

The same view tree maintains a conjunctive query's result in three ways,
differing only in where the result tuples live:

* ``listing_keys``   — keys of the root view carry result tuples, payloads
  their multiplicities (ℤ ring, free variables kept as group-by keys);
* ``listing_payloads`` — the relational data ring: the root payload *is* the
  result relation (free variables lifted into payload space);
* ``factorized``     — the result is distributed over the payload hierarchy
  of *all* views: each view keeps, per key, the union of its own variable's
  values with derivation counts (Figure 2e's blue views).  Arbitrarily more
  succinct than listing, yet lossless: :meth:`ConjunctiveQuery.enumerate`
  streams the result tuples (with multiplicities) back out.

The factorized mode is implemented by a view-tree transformation: a free
variable stays in the keys of *its own* view and is marginalized one level
up, which is exactly "compute ⊕_{Y ∈ T−{X}} P[T]" from the paper expressed
in key space (counts in ℤ payloads instead of nested unit relations).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.bench.memory import strategy_scalars
from repro.core.engine import FIVMEngine
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, ViewTree, build_view_tree
from repro.data.relation import Relation
from repro.rings.numeric import INT_RING
from repro.rings.lifting import Lifting
from repro.rings.relational import RelationalRing, free_lift

__all__ = ["ConjunctiveQuery", "MODES"]

MODES = ("listing_keys", "listing_payloads", "factorized")


def _factorize_tree(tree: ViewTree, free: Sequence[str]) -> ViewTree:
    """Defer marginalization of free variables to the parent view.

    After the transform, the view at variable X keeps X in its keys (the
    union of X-values with counts, per dependency context) and X is summed
    out where the parent joins — turning the view hierarchy itself into the
    factorized representation over the variable order.
    """
    free_set = set(free)
    order = tree.order

    def walk(node: ViewNode) -> Tuple[str, ...]:
        """Returns the variables this node defers to its parent."""
        if node.is_leaf:
            return ()
        inherited: List[str] = []
        for child in node.children:
            inherited.extend(walk(child))
        own_free = tuple(v for v in node.at_vars if v in free_set)
        node.marginalized = tuple(inherited) + tuple(
            v for v in node.marginalized if v not in free_set
        )
        node.keys = order.canonical_sort(set(node.keys) | set(own_free))
        return own_free

    deferred = walk(tree.root)
    # The root keeps its own free variables; nothing above marginalizes them.
    del deferred
    return tree


class ConjunctiveQuery:
    """A maintained conjunctive query under one of the three representations."""

    def __init__(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]],
        free: Sequence[str],
        mode: str = "factorized",
        order: Optional[VariableOrder] = None,
        updatable: Optional[Sequence[str]] = None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.free = tuple(free)
        self.name = name

        if mode == "listing_keys":
            query = Query(name, relations, free=self.free, ring=INT_RING)
            self.engine = FIVMEngine(query, order=order, updatable=updatable)
        elif mode == "listing_payloads":
            ring = RelationalRing()
            lifting = Lifting(ring)
            for variable in self.free:
                lifting.set(variable, free_lift(variable))
            query = Query(name, relations, free=(), ring=ring, lifting=lifting)
            self.engine = FIVMEngine(query, order=order, updatable=updatable)
        else:
            query = Query(name, relations, free=(), ring=INT_RING)
            tree = build_view_tree(query, order)
            tree = _factorize_tree(tree, self.free)
            self.engine = FIVMEngine(
                query, tree=tree, updatable=updatable, materialize="all"
            )
        self.query = self.engine.query
        # Canonical output order: free variables by variable-order position.
        self.output_schema = self.engine.tree.order.canonical_sort(self.free)

    # ------------------------------------------------------------------

    @property
    def ring(self):
        """The ring deltas must be built over (ℤ or the relational ring)."""
        return self.query.ring

    def apply_update(self, delta: Relation) -> None:
        self.engine.apply_update(delta)

    def memory(self) -> int:
        """Logical scalars stored across all views (for Figure 8)."""
        return strategy_scalars(self.engine)

    def result_relation(self) -> Relation:
        """The result as one relation (listing modes only)."""
        if self.mode == "listing_keys":
            result = self.engine.result()
            if result.schema != self.output_schema:
                return result.reorder(self.output_schema)
            return result
        if self.mode == "listing_payloads":
            payload = self.engine.result().payload(())
            if isinstance(payload, Relation) and payload.schema:
                if payload.schema != self.output_schema:
                    return payload.reorder(self.output_schema)
                return payload
            return Relation("result", self.output_schema, INT_RING)
        raise ValueError(
            "factorized results are enumerated, not materialized; use "
            "enumerate() or to_listing()"
        )

    def to_listing(self) -> Relation:
        """Materialize the result as a listing relation (any mode)."""
        if self.mode != "factorized":
            return self.result_relation()
        out = Relation("result", self.output_schema, INT_RING)
        for row, multiplicity in self.enumerate():
            out.add(row, multiplicity)
        return out

    def result_size(self) -> int:
        """Number of distinct result tuples."""
        if self.mode == "factorized":
            return sum(1 for _ in self.enumerate())
        return len(self.result_relation())

    # ------------------------------------------------------------------
    # Constant-delay-style enumeration from the factorized representation
    # ------------------------------------------------------------------

    def enumerate(self) -> Iterator[Tuple[tuple, int]]:
        """Yield (tuple over the output schema, multiplicity).

        Walks the view hierarchy top-down, binding each view's own free
        variables from its stored keys given the ancestor context
        (conditional independence makes this sound), then derives the
        multiplicity as the product of per-relation aggregate counts.
        """
        if self.mode != "factorized":
            for key, payload in sorted(self.to_listing().items(), key=repr):
                yield key, payload
            return

        tree = self.engine.tree
        views = self.engine.views
        free_set = set(self.free)

        # Exact multiplicities factor per relation only when bound variables
        # are relation-local (true for all of the paper's §6.3 workloads:
        # natural joins have no bound variables, and e.g. E in Example 6.5
        # occurs in S alone).  Shared bound join variables would need the
        # per-region aggregation the paper leaves to the count views.
        bound_vars = [v for v in self.query.variables if v not in free_set]
        for variable in bound_vars:
            owners = self.query.relations_with(variable)
            if len(owners) > 1:
                raise ValueError(
                    f"bound variable {variable!r} is shared by {owners}; "
                    "factorized enumeration requires relation-local bound "
                    "variables"
                )
        for variable in self.free:
            stray = [
                a for a in tree.order.ancestors(variable) if a not in free_set
            ]
            if stray:
                raise ValueError(
                    f"free variable {variable!r} sits below bound {stray}; "
                    "use a variable order with free variables on top"
                )

        inner_nodes: List[ViewNode] = []

        def collect(node: ViewNode) -> None:
            if not node.is_leaf:
                inner_nodes.append(node)
            for child in node.children:
                collect(child)

        collect(tree.root)

        # Each inner node binds its own free variables; probe it on the
        # remaining key attributes (its dependency context).
        node_own: Dict[str, Tuple[str, ...]] = {}
        node_probe: Dict[str, Tuple[str, ...]] = {}
        for node in inner_nodes:
            own = tuple(v for v in node.keys if v in free_set and v in node.at_vars)
            probe = tuple(a for a in node.keys if a not in own)
            node_own[node.name] = own
            node_probe[node.name] = probe
            if probe and probe != views[node.name].schema:
                views[node.name].register_index(probe)

        # Leaves provide the multiplicities: the count of base tuples
        # matching the free-variable binding (bound attributes summed out).
        leaf_probe: Dict[str, Tuple[str, ...]] = {}
        for leaf in tree.leaves.values():
            probe = tuple(a for a in leaf.keys if a in free_set)
            leaf_probe[leaf.name] = probe
            stored = views[leaf.name]
            if probe and probe != stored.schema:
                stored.register_index(probe)

        def multiplicity(binding: Dict[str, object]) -> int:
            total = 1
            for leaf in tree.leaves.values():
                probe = leaf_probe[leaf.name]
                subkey = tuple(binding[a] for a in probe)
                stored = views[leaf.name]
                count = 0
                for _, payload in stored.lookup(probe, subkey):
                    count += payload
                total *= count
                if total == 0:
                    return 0
            return total

        def assign(index: int, binding: Dict[str, object]) -> Iterator[dict]:
            if index == len(inner_nodes):
                yield binding
                return
            node = inner_nodes[index]
            own = node_own[node.name]
            if not own:
                yield from assign(index + 1, binding)
                return
            probe = node_probe[node.name]
            subkey = tuple(binding[a] for a in probe)
            stored = views[node.name]
            own_positions = [node.keys.index(v) for v in own]
            for key, _count in stored.lookup(probe, subkey):
                extended = dict(binding)
                for position, variable in zip(own_positions, own):
                    extended[variable] = key[position]
                yield from assign(index + 1, extended)

        for binding in assign(0, {}):
            count = multiplicity(binding)
            if count != 0:
                yield tuple(binding[v] for v in self.output_schema), count
