"""Applications: matrix chains, regression over joins, conjunctive queries."""

from repro.apps.conjunctive import MODES, ConjunctiveQuery
from repro.apps.inference import (
    FactorGraph,
    MaxProductInference,
    SumProductInference,
)
from repro.apps.matrix_chain import (
    DenseChainFIVM,
    DenseChainFirstOrder,
    DenseChainReeval,
    MatrixChainIVM,
    chain_query,
    chain_variable_order,
    matrix_chain_order,
)
from repro.apps.regression import (
    CofactorModel,
    TrainedModel,
    cofactor_query,
    least_squares_from_moments,
)

__all__ = [
    "ConjunctiveQuery",
    "MODES",
    "FactorGraph",
    "SumProductInference",
    "MaxProductInference",
    "MatrixChainIVM",
    "DenseChainFIVM",
    "DenseChainFirstOrder",
    "DenseChainReeval",
    "chain_query",
    "chain_variable_order",
    "matrix_chain_order",
    "CofactorModel",
    "TrainedModel",
    "cofactor_query",
    "least_squares_from_moments",
]
