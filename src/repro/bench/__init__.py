"""Benchmark substrate: stream harness and logical memory accounting."""

from repro.bench.harness import StreamRunResult, format_table, run_stream
from repro.bench.memory import payload_scalars, relation_scalars, strategy_scalars

__all__ = [
    "StreamRunResult",
    "run_stream",
    "format_table",
    "payload_scalars",
    "relation_scalars",
    "strategy_scalars",
]
