"""Benchmark substrate: stream harness and logical memory accounting."""

from repro.bench.harness import (
    StreamRunResult,
    format_table,
    run_stream,
    timed_chain_rank_one,
    timed_per_update,
)
from repro.bench.memory import payload_scalars, relation_scalars, strategy_scalars

__all__ = [
    "StreamRunResult",
    "run_stream",
    "timed_per_update",
    "timed_chain_rank_one",
    "format_table",
    "payload_scalars",
    "relation_scalars",
    "strategy_scalars",
]
