"""Micro-bench smoke check: the compiled trigger paths must not regress.

Two guards, both designed for CI (small enough to finish in seconds, loud
enough to catch a compiled-path performance regression; prints a JSON
report so the numbers are machine-readable):

* **flat path** — a tiny retailer cofactor stream through the slot-compiled
  engine, the ``compiled=False`` interpreter, and the batched
  ``apply_batch`` trigger; the compiled path must reach at least
  ``MIN_RATIO`` × the interpreter's throughput (ratcheted to 1.0 once the
  compiled path settled — compiled may never lose to the interpreter);
* **factorized path** — rank-1 updates to the middle of a small matrix
  chain through the compiled factor slot programs vs the generic
  relational-ops ``_propagate_factored``; the compiled path must reach at
  least ``MIN_FACTORIZED_RATIO`` × the generic path's update rate.

Run as ``PYTHONPATH=src python -m repro.bench.smoke``.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.apps.regression import CofactorModel
from repro.bench.harness import run_stream, timed_chain_rank_one
from repro.datasets import retailer
from repro.datasets.matrices import random_matrix, rank_r_update
from repro.datasets.streams import round_robin_stream

__all__ = ["run_smoke", "run_factorized_smoke", "main"]

#: Compiled must reach at least this fraction of interpreter throughput.
MIN_RATIO = 1.0

#: The compiled factorized path must reach at least this fraction of the
#: generic ``_propagate_factored`` update rate.
MIN_FACTORIZED_RATIO = 1.0


def _model(workload, compiled: bool = True) -> CofactorModel:
    return CofactorModel(
        "smoke",
        workload.schemas,
        workload.numeric_variables,
        order=workload.variable_order,
        compiled=compiled,
    )


def run_smoke(scale: float = 0.08, batch_size: int = 10, repeats: int = 5) -> dict:
    """Measure compiled / interpreter / batched throughput on a tiny stream.

    Takes the best of ``repeats`` runs per strategy to damp scheduler noise
    (the 1.0× floor leaves little headroom on this tiny stream, so the runs
    are interleaved and the best of five is compared); the streams are
    identical, so results are directly comparable.
    """
    workload = retailer.generate(scale=scale, seed=7)
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=batch_size
    )
    best = {"compiled": 0.0, "interpreter": 0.0, "batched": 0.0}
    for _ in range(repeats):
        compiled = _model(workload)
        result = run_stream(
            "compiled", compiled.engine, stream, compiled.query.ring,
            checkpoints=2,
        )
        best["compiled"] = max(best["compiled"], result.average_throughput)

        interp = _model(workload, compiled=False)
        result = run_stream(
            "interpreter", interp.engine, stream, interp.query.ring,
            checkpoints=2,
        )
        best["interpreter"] = max(
            best["interpreter"], result.average_throughput
        )

        batched = _model(workload)
        result = run_stream(
            "batched", batched.engine, stream, batched.query.ring,
            checkpoints=2, group=20,
        )
        best["batched"] = max(best["batched"], result.average_throughput)
    ratio = (
        best["compiled"] / best["interpreter"]
        if best["interpreter"] > 0 else float("inf")
    )
    factorized = run_factorized_smoke()
    ok = ratio >= MIN_RATIO and factorized["ok"]
    return {
        "tuples": stream.total_tuples,
        "throughput": {name: round(value) for name, value in best.items()},
        "compiled_over_interpreter": round(ratio, 3),
        "min_ratio": MIN_RATIO,
        "factorized": factorized,
        "ok": ok,
    }


def run_factorized_smoke(n: int = 32, updates: int = 12, repeats: int = 3) -> dict:
    """Rank-1 matrix-chain updates: compiled factor programs vs the generic
    relational-ops factorized path, best of ``repeats``."""
    rng = np.random.default_rng(7)
    mats = [random_matrix(n, n, rng) for _ in range(3)]
    terms = rank_r_update(n, 1, rng) * updates
    best = {"compiled": float("inf"), "generic": float("inf")}
    for _ in range(repeats):
        for name, compiled in (("compiled", True), ("generic", False)):
            _, seconds = timed_chain_rank_one(mats, terms, compiled)
            best[name] = min(best[name], seconds)
    ratio = (
        best["generic"] / best["compiled"]
        if best["compiled"] > 0 else float("inf")
    )
    return {
        "chain_n": n,
        "sec_per_update": {k: round(v, 6) for k, v in best.items()},
        "compiled_over_generic": round(ratio, 3),
        "min_ratio": MIN_FACTORIZED_RATIO,
        "ok": ratio >= MIN_FACTORIZED_RATIO,
    }


def main() -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        if report["compiled_over_interpreter"] < MIN_RATIO:
            print(
                f"FAIL: compiled path at "
                f"{report['compiled_over_interpreter']}x interpreter "
                f"(minimum {MIN_RATIO}x)",
                file=sys.stderr,
            )
        if not report["factorized"]["ok"]:
            print(
                f"FAIL: compiled factorized path at "
                f"{report['factorized']['compiled_over_generic']}x the "
                f"generic path (minimum {MIN_FACTORIZED_RATIO}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
