"""Micro-bench smoke check: the compiled trigger path must not regress.

Runs a tiny retailer cofactor stream through the slot-compiled engine, the
``compiled=False`` interpreter, and the batched ``apply_batch`` trigger,
then asserts the compiled path is not slower than ``MIN_RATIO`` × the
interpreter.  Designed for CI: small enough to finish in seconds, loud
enough to catch a compiled-path performance regression.  Prints a JSON
report so the numbers are machine-readable.

Run as ``PYTHONPATH=src python -m repro.bench.smoke``.
"""

from __future__ import annotations

import json
import sys

from repro.apps.regression import CofactorModel
from repro.bench.harness import run_stream
from repro.datasets import retailer
from repro.datasets.streams import round_robin_stream

__all__ = ["run_smoke", "main"]

#: Compiled must reach at least this fraction of interpreter throughput.
MIN_RATIO = 0.8


def _model(workload, compiled: bool = True) -> CofactorModel:
    return CofactorModel(
        "smoke",
        workload.schemas,
        workload.numeric_variables,
        order=workload.variable_order,
        compiled=compiled,
    )


def run_smoke(scale: float = 0.08, batch_size: int = 10, repeats: int = 3) -> dict:
    """Measure compiled / interpreter / batched throughput on a tiny stream.

    Takes the best of ``repeats`` runs per strategy to damp scheduler noise;
    the streams are identical, so results are directly comparable.
    """
    workload = retailer.generate(scale=scale, seed=7)
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=batch_size
    )
    best = {"compiled": 0.0, "interpreter": 0.0, "batched": 0.0}
    for _ in range(repeats):
        compiled = _model(workload)
        result = run_stream(
            "compiled", compiled.engine, stream, compiled.query.ring,
            checkpoints=2,
        )
        best["compiled"] = max(best["compiled"], result.average_throughput)

        interp = _model(workload, compiled=False)
        result = run_stream(
            "interpreter", interp.engine, stream, interp.query.ring,
            checkpoints=2,
        )
        best["interpreter"] = max(
            best["interpreter"], result.average_throughput
        )

        batched = _model(workload)
        result = run_stream(
            "batched", batched.engine, stream, batched.query.ring,
            checkpoints=2, group=20,
        )
        best["batched"] = max(best["batched"], result.average_throughput)
    ratio = (
        best["compiled"] / best["interpreter"]
        if best["interpreter"] > 0 else float("inf")
    )
    return {
        "tuples": stream.total_tuples,
        "throughput": {name: round(value) for name, value in best.items()},
        "compiled_over_interpreter": round(ratio, 3),
        "min_ratio": MIN_RATIO,
        "ok": ratio >= MIN_RATIO,
    }


def main() -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        print(
            f"FAIL: compiled path at {report['compiled_over_interpreter']}x "
            f"interpreter (minimum {MIN_RATIO}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
