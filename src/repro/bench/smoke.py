"""Micro-bench smoke check: the compiled trigger paths must not regress.

Two guards, both designed for CI (small enough to finish in seconds, loud
enough to catch a compiled-path performance regression; prints a JSON
report so the numbers are machine-readable):

* **flat path** — a tiny retailer stream, twice: the cofactor ring
  through the generated source backend and the batched ``apply_batch``
  trigger (throughput context for the trajectory), and a COUNT query
  (ℤ ring) through the source and IR-interpreter backends.  The
  ratcheted ``compiled_over_interpreter`` ratio comes from the COUNT
  run: there trigger overhead — the thing code generation removes —
  dominates, so the generated path must clear ``MIN_RATIO`` × the
  interpreter with real headroom (on the cofactor ring both backends
  pay the same ring arithmetic and sit within noise of each other,
  which would make a floor there pure coin-flipping);
* **factorized path** — rank-1 updates to the middle of a small matrix
  chain through the generated factor programs vs the IR-interpreter
  factor path; the compiled path must reach at least
  ``MIN_FACTORIZED_RATIO`` × the interpreter's update rate.

Run as ``PYTHONPATH=src python -m repro.bench.smoke``.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.apps.regression import CofactorModel
from repro.bench.harness import run_stream, timed_chain_rank_one
from repro.datasets import retailer
from repro.datasets.matrices import random_matrix, rank_r_update
from repro.datasets.streams import round_robin_stream

__all__ = ["run_smoke", "run_factorized_smoke", "main"]

#: The generated source backend must reach at least this multiple of the
#: IR interpreter's throughput on the COUNT workload (measured ~2x; the
#: floor leaves noise headroom while still catching a compiled path that
#: loses its edge over the reference semantics).
MIN_RATIO = 1.2

#: The compiled factorized path must reach at least this fraction of the
#: IR-interpreter factor-program update rate.
MIN_FACTORIZED_RATIO = 1.0


def _model(workload, compiled: bool = True) -> CofactorModel:
    return CofactorModel(
        "smoke",
        workload.schemas,
        workload.numeric_variables,
        order=workload.variable_order,
        compiled=compiled,
    )


def run_smoke(scale: float = 0.08, batch_size: int = 10, repeats: int = 5) -> dict:
    """Measure compiled / interpreter / batched throughput on tiny streams.

    Takes the best of ``repeats`` interleaved runs per strategy to damp
    scheduler noise; the streams are identical, so results are directly
    comparable.  The cofactor runs are recorded for the trajectory; the
    ratcheted compiled/interpreter ratio comes from the COUNT runs (see
    the module docstring).
    """
    from repro.core import FIVMEngine, Query
    from repro.rings import INT_RING

    workload = retailer.generate(scale=scale, seed=7)
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=batch_size
    )

    def count_engine(backend: str) -> FIVMEngine:
        query = Query("smoke_count", workload.schemas, ring=INT_RING)
        return FIVMEngine(query, workload.variable_order, backend=backend)

    best = {
        "compiled": 0.0, "batched": 0.0,
        "count_compiled": 0.0, "count_interpreter": 0.0,
    }
    for _ in range(repeats):
        compiled = _model(workload)
        result = run_stream(
            "compiled", compiled.engine, stream, compiled.query.ring,
            checkpoints=2,
        )
        best["compiled"] = max(best["compiled"], result.average_throughput)

        batched = _model(workload)
        result = run_stream(
            "batched", batched.engine, stream, batched.query.ring,
            checkpoints=2, group=20,
        )
        best["batched"] = max(best["batched"], result.average_throughput)

        for name, backend in (
            ("count_compiled", "source"), ("count_interpreter", "interpreter")
        ):
            engine = count_engine(backend)
            result = run_stream(name, engine, stream, INT_RING, checkpoints=2)
            best[name] = max(best[name], result.average_throughput)
    ratio = (
        best["count_compiled"] / best["count_interpreter"]
        if best["count_interpreter"] > 0 else float("inf")
    )
    factorized = run_factorized_smoke()
    ok = ratio >= MIN_RATIO and factorized["ok"]
    return {
        "tuples": stream.total_tuples,
        "throughput": {name: round(value) for name, value in best.items()},
        "compiled_over_interpreter": round(ratio, 3),
        "min_ratio": MIN_RATIO,
        "factorized": factorized,
        "ok": ok,
    }


def run_factorized_smoke(n: int = 32, updates: int = 12, repeats: int = 3) -> dict:
    """Rank-1 matrix-chain updates: generated factor programs vs the
    IR-interpreter factor path, best of ``repeats``."""
    rng = np.random.default_rng(7)
    mats = [random_matrix(n, n, rng) for _ in range(3)]
    terms = rank_r_update(n, 1, rng) * updates
    best = {"compiled": float("inf"), "generic": float("inf")}
    for _ in range(repeats):
        for name, compiled in (("compiled", True), ("generic", False)):
            _, seconds = timed_chain_rank_one(mats, terms, compiled)
            best[name] = min(best[name], seconds)
    ratio = (
        best["generic"] / best["compiled"]
        if best["compiled"] > 0 else float("inf")
    )
    return {
        "chain_n": n,
        "sec_per_update": {k: round(v, 6) for k, v in best.items()},
        "compiled_over_generic": round(ratio, 3),
        "min_ratio": MIN_FACTORIZED_RATIO,
        "ok": ratio >= MIN_FACTORIZED_RATIO,
    }


def main() -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        if report["compiled_over_interpreter"] < MIN_RATIO:
            print(
                f"FAIL: compiled path at "
                f"{report['compiled_over_interpreter']}x interpreter "
                f"(minimum {MIN_RATIO}x)",
                file=sys.stderr,
            )
        if not report["factorized"]["ok"]:
            print(
                f"FAIL: compiled factorized path at "
                f"{report['factorized']['compiled_over_generic']}x the "
                f"generic path (minimum {MIN_FACTORIZED_RATIO}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
