"""Shard-scaling smoke: the sharded engine on a tiny retailer stream.

The CI companion of ``benchmarks/test_fig_shard_scaling.py``: small enough
for every push, loud enough to catch a broken merge or a parallel-path
collapse.  Two guards:

* **merge equality** — the S-shard run's maintained cofactor result must
  equal the single-engine run on the same stream (always enforced; this is
  the ring-merge soundness contract, independent of hardware);
* **scaling** — with the multiprocessing executor, S=4 must reach at least
  ``MIN_SPEEDUP`` × the S=1 throughput.  Parallel speedup needs parallel
  hardware, so this gate is enforced only when the host has ≥ 4 CPUs (the
  JSON always records the measured ratio and the core count, and the
  bench-regression ratchet compares ratios across runs with a tolerance
  band — see :mod:`repro.bench.regression`).

The workload is the fig7 retailer cofactor scenario in its ONE form:
dimension tables preloaded, the ``Inventory`` fact relation streaming —
every update hash-routes on ``locn`` (the variable-order root), so the
shards progress independently.

Run as ``PYTHONPATH=src python -m repro.bench.shard_smoke``.
"""

from __future__ import annotations

import json
import os
import sys

from repro.apps.regression import cofactor_query
from repro.bench.harness import run_stream
from repro.core.sharded import ShardedFIVMEngine
from repro.datasets import retailer
from repro.datasets.streams import single_relation_stream

__all__ = ["run_shard_smoke", "main"]

#: S=4 over S=1 throughput floor, enforced on hosts with >= 4 CPUs.
MIN_SPEEDUP = 1.5

#: Core count below which the scaling gate is recorded but not enforced.
MIN_CPUS_TO_ENFORCE = 4


def run_shard_smoke(
    scale: float = 0.06,
    batch_size: int = 12,
    group: int = 16,
    shard_counts=(1, 4),
) -> dict:
    """Measure sharded throughput at each shard count on one tiny stream.

    Returns the machine-readable report (shape documented in
    ``tests/README.md``); ``ok`` folds both guards together.
    """
    workload = retailer.generate(scale=scale, seed=7)
    query = cofactor_query(
        "shard_smoke", workload.schemas, workload.numeric_variables
    )
    ring = query.ring
    static_db = workload.preloaded_database(ring, streaming=["Inventory"])
    stream = single_relation_stream(
        workload.schemas, workload.tables, "Inventory", batch_size
    )

    throughput: dict = {}
    totals: dict = {}
    executor_used = None
    for shards in shard_counts:
        engine = ShardedFIVMEngine(
            query,
            order=workload.variable_order,
            shards=shards,
            updatable=["Inventory"],
            db=static_db,
            executor="process",
        )
        try:
            executor_used = engine.executor
            result = run_stream(
                f"S={shards}", engine, stream, ring,
                checkpoints=2, group=group,
            )
            throughput[f"S={shards}"] = result.average_throughput
            totals[shards] = engine.result().payload(())
        finally:
            engine.close()

    base = min(shard_counts)
    peak = max(shard_counts)
    speedup = (
        throughput[f"S={peak}"] / throughput[f"S={base}"]
        if throughput[f"S={base}"] > 0 else float("inf")
    )
    merge_equal = all(
        ring.eq(totals[base], totals[shards]) for shards in shard_counts
    )
    cpu_count = os.cpu_count() or 1
    enforced = cpu_count >= MIN_CPUS_TO_ENFORCE and executor_used == "process"
    ok = merge_equal and (speedup >= MIN_SPEEDUP if enforced else True)
    return {
        "tuples": stream.total_tuples,
        "cpu_count": cpu_count,
        "executor": executor_used,
        "throughput": {name: round(value) for name, value in throughput.items()},
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "scaling_enforced": enforced,
        "merge_equal": merge_equal,
        "ok": ok,
    }


def main() -> int:
    report = run_shard_smoke()
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        if not report["merge_equal"]:
            print(
                "FAIL: sharded totals diverge from the single-shard run",
                file=sys.stderr,
            )
        elif report["speedup"] < report["min_speedup"]:
            print(
                f"FAIL: S=4 at {report['speedup']}x S=1 "
                f"(minimum {report['min_speedup']}x on "
                f"{report['cpu_count']} CPUs)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
