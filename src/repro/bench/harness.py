"""Throughput/memory harness shared by all benchmarks.

Runs a maintenance strategy over an update stream, recording cumulative
throughput (tuples/second) and logical memory at evenly spaced stream
fractions — the axes of the paper's Figures 7, 8, and 13.  A time budget
emulates the paper's one-hour timeout (scaled down): strategies that exceed
it are marked timed out and report the fraction they reached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bench.memory import strategy_scalars
from repro.datasets.streams import UpdateStream

__all__ = [
    "StreamRunResult",
    "run_stream",
    "timed_per_update",
    "timed_chain_rank_one",
    "format_table",
]


def timed_per_update(fn: Callable[[], object], repeats: int) -> float:
    """Average wall-clock seconds per call of ``fn`` over ``repeats`` calls.

    The update-shaped twin of :func:`run_stream` for workloads that are not
    tuple streams (rank-1 matrix updates, factorized deltas): the fig6
    benchmarks, the factorized ablation, and the CI smoke's factorized
    column all time through this one helper so their numbers compare.
    """
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def timed_chain_rank_one(mats, terms, compiled: bool, index: int = 2):
    """Seconds per rank-1 update to ``A<index>`` of a hash-engine matrix
    chain, plus the driven chain (so callers can compare end states).

    The one protocol shared by the factorized ablation and the CI smoke's
    factorized column: the first update is burned off the clock (it pays
    the lazy factor-program compilation), the rest are timed through
    :func:`timed_per_update` — so at least two terms are required.
    """
    from repro.apps.matrix_chain import MatrixChainIVM

    if len(terms) < 2:
        raise ValueError(
            "timed_chain_rank_one needs >= 2 terms: the first is burned as "
            "the compilation warm-up"
        )

    chain = MatrixChainIVM(mats, updatable=[f"A{index}"], compiled=compiled)
    queue = iter(terms)

    def one_update():
        u, v = next(queue)
        chain.apply_rank_one(index, u, v)

    one_update()
    return chain, timed_per_update(one_update, len(terms) - 1)


@dataclass
class StreamRunResult:
    """Checkpointed measurements from one strategy over one stream."""

    name: str
    fractions: List[float] = field(default_factory=list)
    throughput: List[float] = field(default_factory=list)
    memory: List[int] = field(default_factory=list)
    total_tuples: int = 0
    total_seconds: float = 0.0
    timed_out: bool = False

    @property
    def average_throughput(self) -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return self.total_tuples / self.total_seconds

    @property
    def peak_memory(self) -> int:
        return max(self.memory) if self.memory else 0


def run_stream(
    name: str,
    strategy,
    stream: UpdateStream,
    ring,
    checkpoints: int = 10,
    time_budget: Optional[float] = None,
    apply: Optional[Callable] = None,
    group: int = 1,
) -> StreamRunResult:
    """Drive ``strategy`` through the stream, sampling at checkpoints.

    ``apply`` overrides how a delta is fed to the strategy (default:
    ``strategy.apply_update(delta)``).  Timing covers only the apply calls;
    delta construction and memory accounting are outside the clock.

    ``group`` > 1 exercises the batched multi-relation trigger: ``group``
    consecutive deltas are handed to ``apply`` as one list (default:
    ``strategy.apply_batch(deltas)``), so per-relation coalescing and
    single-pass path propagation are on the clock while the stream, its
    checkpoints, and the tuple accounting stay identical.
    """
    if group > 1:
        apply = apply or (lambda deltas: strategy.apply_batch(deltas))
    else:
        apply = apply or (lambda delta: strategy.apply_update(delta))
    result = StreamRunResult(name=name)
    total_batches = len(stream.batches)
    if total_batches == 0:
        return result
    marks = {
        max(0, round(total_batches * i / checkpoints) - 1)
        for i in range(1, checkpoints + 1)
    }
    elapsed = 0.0
    tuples_done = 0
    total_tuples = max(1, stream.total_tuples)
    pending: List = []
    pending_tuples = 0
    for index, delta in enumerate(stream.deltas(ring)):
        batch_tuples = len(stream.batches[index])
        if group > 1:
            pending.append(delta)
            pending_tuples += batch_tuples
            # Flush on a full group, at checkpoints (so measurements line
            # up across group sizes), and at the end of the stream.
            if (
                len(pending) < group
                and index not in marks
                and index != total_batches - 1
            ):
                continue
            start = time.perf_counter()
            apply(pending)
            elapsed += time.perf_counter() - start
            tuples_done += pending_tuples
            pending = []
            pending_tuples = 0
        else:
            start = time.perf_counter()
            apply(delta)
            elapsed += time.perf_counter() - start
            tuples_done += batch_tuples
        if index in marks:
            result.fractions.append(tuples_done / total_tuples)
            result.throughput.append(
                tuples_done / elapsed if elapsed > 0 else float("inf")
            )
            result.memory.append(strategy_scalars(strategy))
        if time_budget is not None and elapsed > time_budget:
            result.timed_out = True
            break
    result.total_tuples = tuples_done
    result.total_seconds = elapsed
    if not result.fractions or result.fractions[-1] < 1.0:
        result.fractions.append(tuples_done / max(1, stream.total_tuples))
        result.throughput.append(
            tuples_done / elapsed if elapsed > 0 else float("inf")
        )
        result.memory.append(strategy_scalars(strategy))
    return result


def format_table(title: str, headers: List[str], rows: List[List[object]]) -> str:
    """Render an aligned text table (the benches print paper-style tables)."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
