"""Logical memory accounting for maintained strategies.

The paper profiles allocated memory with gperftools; CPython RSS is
dominated by interpreter noise, so we count *logical scalars* instead: one
unit per key component plus the payload's stored scalars (matrix cells,
nested-relation entries, polynomial coefficients, ...).  Relative sizes —
which strategy stores how much, how memory grows along the stream — are what
the paper's memory plots compare, and those survive this substitution.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.relation import Relation
from repro.rings.cofactor import CofactorTriple

__all__ = ["payload_scalars", "relation_scalars", "strategy_scalars"]


def payload_scalars(payload) -> int:
    """Number of scalars a payload value stores."""
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float, complex)):
        return 1
    if isinstance(payload, CofactorTriple):
        return payload.scalar_entries()
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, Relation):
        return relation_scalars(payload)
    if isinstance(payload, dict):
        # Degree-ring polynomials: coefficient + monomial indices per entry.
        return sum(1 + len(monomial) for monomial in payload)
    if isinstance(payload, tuple):
        return sum(payload_scalars(part) for part in payload)
    return 1


def relation_scalars(relation: Relation) -> int:
    """Scalars stored by a relation: key components plus payloads."""
    width = max(1, len(relation.schema))
    total = 0
    for _, payload in relation.items():
        total += width + payload_scalars(payload)
    return total


def _stored_relations(strategy) -> Iterable[Relation]:
    """Every relation a strategy keeps resident, duck-typed per class."""
    views = getattr(strategy, "views", None)
    if isinstance(views, dict):
        yield from views.values()
        indicator_views = getattr(strategy, "_indicator_views", None)
        if isinstance(indicator_views, dict):
            for group in indicator_views.values():
                for iv in group:
                    yield iv.relation
        return
    base = getattr(strategy, "base", None)
    if isinstance(base, dict):
        yield from base.values()
        result = getattr(strategy, "_result", None)
        if result is not None:
            yield result
        return
    strategies = getattr(strategy, "strategies", None)
    if strategies is not None:
        for sub in strategies:
            yield from _stored_relations(sub)
        return
    raise TypeError(
        f"don't know how to account memory for {type(strategy).__name__}"
    )


def strategy_scalars(strategy) -> int:
    """Total logical scalars resident in a maintenance strategy.

    Strategies whose state lives elsewhere (the sharded engine's worker
    processes) expose a ``logical_scalars()`` hook instead of resident
    relations; it wins when present.
    """
    custom = getattr(strategy, "logical_scalars", None)
    if callable(custom):
        return custom()
    return sum(relation_scalars(rel) for rel in _stored_relations(strategy))
