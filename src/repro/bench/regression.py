"""Bench-regression ratchet: fresh BENCH_*.json vs committed baselines.

CI regenerates the smoke benchmarks on every push (``repro.bench.smoke``,
``repro.bench.shard_smoke``) and this module compares the fresh JSON
against the baselines committed under ``benchmarks/results/``, failing on
a regression beyond the tolerance band.

What is ratcheted — and what deliberately is not:

* **Ratio metrics** (compiled/interpreter, compiled/generic, sharded
  S=4/S=1) are dimensionless and survive a hardware change, so they are
  compared directly: ``fresh >= baseline * (1 - tolerance)`` or the check
  fails.  This is the throughput-regression ratchet — a strategy slipping
  >15% against its in-run reference trips it on any machine.
* **Flag metrics** (``merge_equal``, ``ok``) must simply stay truthy.
* **Parallel-scaling ratios** additionally require the fresh host to have
  at least the baseline's core count (``cpu_guard``): a 1-core laptop
  cannot be held to a 4-core baseline's speedup (the reverse — a beefier
  host vs a weaker baseline — is enforced, which is how the ratchet
  tightens when baselines are regenerated on CI-class hardware).
* **Absolute throughputs** are printed for context but never enforced:
  tuples/second on different machines are not comparable, and a 15% band
  on them would only measure runner variance.

Run as::

    PYTHONPATH=src python -m repro.bench.regression --fresh fresh/ \
        [--baseline benchmarks/results] [--tolerance 0.15] \
        [--update-baselines] [--strict]

Exit status 0 when every present metric holds, 1 otherwise.  Fresh files
without a committed baseline (a brand-new bench), and baselines written
before a newly added metric existed, pass with a warn-and-record notice —
commit the fresh JSON (or run with ``--update-baselines``, which copies
every registered fresh file over the baseline directory) to start
ratcheting.  A baseline that exists but cannot be *parsed* is the
dangerous case — the ratchet silently stops ratcheting — so ``--strict``
(CI mode) makes that a hard failure instead of a warn.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["compare", "update_baselines", "main"]

#: filename -> list of (json path, kind, cpu_guard) to enforce.  ``kind``
#: is "ratio" (tolerance-banded, higher is better) or "flag" (must be
#: truthy).  ``cpu_guard`` skips the metric when the fresh host has fewer
#: CPUs than the baseline host (parallel speedup needs parallel hardware).
METRICS = {
    "BENCH_smoke.json": [
        (("compiled_over_interpreter",), "ratio", False),
        (("factorized", "compiled_over_generic"), "ratio", False),
        (("ok",), "flag", False),
    ],
    "BENCH_shard_smoke.json": [
        (("merge_equal",), "flag", False),
        (("ok",), "flag", False),
        (("speedup",), "ratio", True),
    ],
    "BENCH_shard_scaling.json": [
        (("merge_equal",), "flag", False),
        (("speedup", "one", "S=4"), "ratio", True),
    ],
    "BENCH_shard_pipeline.json": [
        (("merge_equal",), "flag", False),
        (("speedup",), "ratio", False),
        (("ok",), "flag", False),
    ],
    "BENCH_ablation_kernel_backend.json": [
        (("speedup",), "ratio", False),
    ],
    "BENCH_ingest_throughput.json": [
        (("speedup",), "ratio", False),
    ],
    "BENCH_serving_latency.json": [
        (("speedup",), "ratio", False),
    ],
    "BENCH_multiview.json": [
        (("speedup",), "ratio", False),
    ],
    "BENCH_recovery.json": [
        (("speedup",), "ratio", False),
        (("ok",), "flag", False),
    ],
}


def _dig(payload: dict, path: Tuple[str, ...]):
    value = payload
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def compare(
    fresh_dir: Path,
    baseline_dir: Path,
    tolerance: float,
    out: Optional[List[str]] = None,
    strict: bool = False,
) -> List[str]:
    """Compare every registered fresh file against its baseline.

    Returns the list of failure messages (empty = ratchet holds); human
    readable progress lines are appended to ``out`` when given, else
    printed.  ``strict`` turns a corrupt (unparseable) baseline into a
    hard failure instead of a warn-and-record: interactively a broken
    file should not block a dev loop, but under CI it means the ratchet
    silently stopped ratcheting — exactly what the gate exists to catch.
    """
    lines: List[str] = out if out is not None else []
    failures: List[str] = []
    seen_any = False
    for filename, metrics in METRICS.items():
        fresh_path = fresh_dir / filename
        if not fresh_path.exists():
            continue
        seen_any = True
        fresh = json.loads(fresh_path.read_text())
        baseline_path = baseline_dir / filename
        if not baseline_path.exists():
            lines.append(
                f"{filename}: no committed baseline — skipping ratchet "
                "(commit the fresh JSON or rerun with --update-baselines)"
            )
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
        except ValueError as exc:
            if strict:
                failures.append(
                    f"{filename}: baseline is not valid JSON ({exc}) — "
                    "a corrupt baseline disables the ratchet; restore or "
                    "regenerate it (--update-baselines)"
                )
                continue
            # A corrupt baseline must not mask a fresh run: record every
            # fresh value and move on (regenerate the baseline to ratchet).
            lines.append(
                f"warn {filename}: baseline is not valid JSON — recording "
                "fresh values without ratcheting"
            )
            baseline = {}
        fresh_cpus = fresh.get("cpu_count", 1)
        base_cpus = baseline.get("cpu_count", 1)
        for path, kind, cpu_guard in metrics:
            label = f"{filename}:{'.'.join(path)}"
            fresh_value = _dig(fresh, path)
            base_value = _dig(baseline, path)
            if fresh_value is None:
                failures.append(f"{label}: missing from fresh run")
                continue
            if kind == "flag":
                if not fresh_value:
                    failures.append(f"{label}: expected truthy, got {fresh_value!r}")
                else:
                    lines.append(f"ok   {label} = {fresh_value}")
                continue
            if base_value is None:
                # A baseline written before this metric existed: warn and
                # record the fresh value instead of failing — regenerating
                # the baseline (e.g. --update-baselines) starts the ratchet.
                lines.append(
                    f"warn {label} = {fresh_value:.3f} (baseline lacks this "
                    "metric; recorded, not ratcheted)"
                )
                continue
            if cpu_guard and fresh_cpus < base_cpus:
                lines.append(
                    f"skip {label}: fresh host has {fresh_cpus} CPUs < "
                    f"baseline's {base_cpus} (parallel ratio not comparable)"
                )
                continue
            floor = base_value * (1.0 - tolerance)
            if fresh_value < floor:
                failures.append(
                    f"{label}: {fresh_value:.3f} < floor {floor:.3f} "
                    f"(baseline {base_value:.3f}, tolerance {tolerance:.0%})"
                )
            else:
                lines.append(
                    f"ok   {label} = {fresh_value:.3f} "
                    f"(baseline {base_value:.3f}, floor {floor:.3f})"
                )
    if not seen_any:
        failures.append(
            f"no registered BENCH_*.json found under {fresh_dir} — "
            "did the smoke runs write their reports?"
        )
    return failures


def update_baselines(fresh_dir: Path, baseline_dir: Path) -> List[str]:
    """Copy every registered fresh ``BENCH_*.json`` over the baselines.

    The explicit refresh path for intentional perf-trajectory changes
    (new metrics, reworked strategies): after this, the next ratchet run
    compares against today's numbers.  Returns the copied filenames.
    """
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied: List[str] = []
    for filename in METRICS:
        fresh_path = fresh_dir / filename
        if not fresh_path.exists():
            continue
        (baseline_dir / filename).write_text(fresh_path.read_text())
        copied.append(filename)
    return copied


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("benchmarks/results"),
        help="directory of committed baselines (default benchmarks/results)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional regression on ratio metrics (default 0.15)",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="copy the registered fresh files over the baseline directory "
        "(prints the comparison for context, then exits 0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on a corrupt baseline file instead of warn-and-record "
        "(CI mode: a baseline that cannot be parsed disables the ratchet)",
    )
    args = parser.parse_args(argv)
    lines: List[str] = []
    failures = compare(
        args.fresh, args.baseline, args.tolerance, out=lines,
        strict=args.strict,
    )
    for line in lines:
        print(line)
    if args.update_baselines:
        for filename in update_baselines(args.fresh, args.baseline):
            print(f"updated baseline {args.baseline / filename}")
        return 0
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
