"""The (non-commutative) ring of n×n matrices over ℝ.

Used by the matrix chain multiplication application (Section 6.1): matrices
are modelled as binary relations whose payloads carry matrix values, and this
ring supplies payload addition/multiplication.  The n×n case is also the
canonical non-commutative ring in the test suite, guarding against any
accidental reliance on commutativity in the view-tree machinery.
"""

from __future__ import annotations

import numpy as np

from repro.rings.base import Ring

__all__ = ["SquareMatrixRing"]


def _frozen(a: np.ndarray) -> np.ndarray:
    """Return ``a`` marked read-only so shared identities cannot be mutated."""
    a.setflags(write=False)
    return a


class SquareMatrixRing(Ring):
    """The matrix ring (M_n(ℝ), +, ·, 0ₙ, Iₙ) from Example A.2."""

    is_commutative = False

    def __init__(self, n: int, tolerance: float = 1e-9):
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        self.n = n
        self.tolerance = tolerance
        self.name = f"M_{n}(R)"
        self._zero = _frozen(np.zeros((n, n)))
        self._one = _frozen(np.eye(n))

    @property
    def zero(self) -> np.ndarray:
        return self._zero

    @property
    def one(self) -> np.ndarray:
        return self._one

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def neg(self, a: np.ndarray) -> np.ndarray:
        return -a

    def eq(self, a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.allclose(a, b, atol=self.tolerance))

    def is_zero(self, a: np.ndarray) -> bool:
        return not bool(np.any(np.abs(a) > self.tolerance))

    def from_int(self, n: int) -> np.ndarray:
        return float(n) * self._one

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A random element, convenient for property-based tests."""
        return rng.uniform(-1.0, 1.0, size=(self.n, self.n))
