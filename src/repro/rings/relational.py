"""The relational data ring ``F[ℤ]`` (Definition 6.4).

Payloads are themselves relations over the ℤ ring: payload addition is
relational union ``⊎`` (multiplicities add) and payload multiplication is
natural join ``⊗`` (multiplicities multiply).  With this ring, the *same*
view tree that counts tuples instead accumulates the (listing or factorized)
representation of a conjunctive query result in its payloads — the paper's
Example 6.5 / Figure 2e.

The paper's footnote 2 notes that a proper ring needs relations whose tuples
carry their own schemas; as there, the practical queries we run only ever
combine payloads with compatible schemas, and we enforce that with explicit
errors rather than generalizing the data model.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.data.relation import Relation
from repro.data.schema import SchemaError
from repro.rings.base import Ring
from repro.rings.numeric import INT_RING

__all__ = ["RelationalRing", "payload_relation", "free_lift", "bound_lift"]


def payload_relation(schema: tuple, data: dict) -> Relation:
    """Build a payload relation over ℤ (a convenience for tests/examples)."""
    return Relation("payload", schema, INT_RING, data)


class RelationalRing(Ring):
    """``(F[ℤ], ⊎, ⊗, 0, 1)``: relations over ℤ as payload values.

    * ``0`` is the empty relation (maps every tuple to 0); we represent it
      with the empty schema and no keys, and treat it as union-compatible
      with every schema.
    * ``1`` is ``{() → 1}``: the relation mapping the empty tuple to 1.
    """

    name = "F[Z]"

    def __init__(self):
        self._zero = Relation("0", (), INT_RING)
        self._one = Relation("1", (), INT_RING, {(): 1})

    @property
    def zero(self) -> Relation:
        return self._zero

    @property
    def one(self) -> Relation:
        return self._one

    def add(self, a: Relation, b: Relation) -> Relation:
        if not a._data:
            return b
        if not b._data:
            return a
        if a.schema != b.schema:
            raise SchemaError(
                f"payload union over schemas {a.schema} vs {b.schema}"
            )
        return a.union(b, name="payload")

    def mul(self, a: Relation, b: Relation) -> Relation:
        if not a._data or not b._data:
            # 0 * x = x * 0 = 0, regardless of schemas.
            return self._zero
        return a.join(b, name="payload")

    def neg(self, a: Relation) -> Relation:
        return a.negate(name="payload")

    def eq(self, a: Relation, b: Relation) -> bool:
        if not a._data and not b._data:
            return True
        return a.same_as(b)

    def is_zero(self, a: Relation) -> bool:
        return not a._data

    def from_int(self, n: int) -> Relation:
        if n == 0:
            return self._zero
        return Relation("payload", (), INT_RING, {(): n})


def free_lift(variable: str) -> Callable[[Any], Relation]:
    """Lifting for a *free* variable: ``x ↦ {(x) → 1}`` over schema ``{X}``.

    Marginalizing with this lift moves the variable's values from the key
    space into the payload space (Section 6.3).
    """

    def _lift(value: Any) -> Relation:
        return Relation("payload", (variable,), INT_RING, {(value,): 1})

    return _lift


def bound_lift() -> Callable[[Any], Relation]:
    """Lifting for a *bound* variable: ``x ↦ {() → 1}`` (the ring one)."""
    one = Relation("1", (), INT_RING, {(): 1})

    def _lift(value: Any) -> Relation:
        return one

    return _lift
