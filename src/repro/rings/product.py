"""Product rings: tuples of payloads combined component-wise.

The product of rings ``D1 × ... × Dk`` is again a ring; it models compound
aggregates that are maintained together but do not share computation (e.g.
several independent SUMs).  The degree-m matrix ring of
:mod:`repro.rings.cofactor` is the paper's sharing-aware alternative; keeping
both lets benchmarks quantify the benefit of sharing.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.rings.base import Ring

__all__ = ["ProductRing"]


class ProductRing(Ring):
    """Component-wise product of the given rings."""

    def __init__(self, rings: Sequence[Ring]):
        if not rings:
            raise ValueError("product of zero rings is not useful")
        self.rings: Tuple[Ring, ...] = tuple(rings)
        self.name = " x ".join(r.name for r in self.rings)
        self.has_additive_inverse = all(r.has_additive_inverse for r in self.rings)
        self.is_commutative = all(r.is_commutative for r in self.rings)
        self._zero = tuple(r.zero for r in self.rings)
        self._one = tuple(r.one for r in self.rings)

    @property
    def zero(self) -> tuple:
        return self._zero

    @property
    def one(self) -> tuple:
        return self._one

    def add(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.add(x, y) for r, x, y in zip(self.rings, a, b))

    def mul(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.mul(x, y) for r, x, y in zip(self.rings, a, b))

    def neg(self, a: tuple) -> tuple:
        return tuple(r.neg(x) for r, x in zip(self.rings, a))

    def eq(self, a: tuple, b: tuple) -> bool:
        return all(r.eq(x, y) for r, x, y in zip(self.rings, a, b))

    def is_zero(self, a: tuple) -> bool:
        return all(r.is_zero(x) for r, x in zip(self.rings, a))

    def sum(self, items) -> tuple:
        """Column-wise sum: each component ring folds its own column once.

        Transposing the batch lets component rings with vectorized sums
        (cofactor, degree) fold their column in one shot instead of per
        pairwise ``add`` — and avoids allocating one intermediate tuple per
        element even for plain scalar components.
        """
        batch = items if isinstance(items, list) else list(items)
        if not batch:
            return self._zero
        if len(batch) == 1:
            return batch[0]
        return tuple(
            r.sum(column) for r, column in zip(self.rings, zip(*batch))
        )

    def from_int(self, n: int) -> tuple:
        return tuple(r.from_int(n) for r in self.rings)
