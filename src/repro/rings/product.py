"""Product rings: tuples of payloads combined component-wise.

The product of rings ``D1 × ... × Dk`` is again a ring; it models compound
aggregates that are maintained together but do not share computation (e.g.
several independent SUMs).  The degree-m matrix ring of
:mod:`repro.rings.cofactor` is the paper's sharing-aware alternative; keeping
both lets benchmarks quantify the benefit of sharing.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.rings.base import Ring

__all__ = ["ProductRing", "ProductKernelOps"]


class ProductKernelOps:
    """Component-wise delegation of the packed-column kernel protocol.

    A packed column (and a store block) is a tuple with one packed column
    per component ring; every operation fans out to the component ops.
    Available only when *all* component rings expose kernel ops — a single
    opaque component forces the whole product back to dict payloads.
    """

    __slots__ = ("ops",)

    def __init__(self, component_ops):
        self.ops = tuple(component_ops)

    def pack(self, column, n):
        packed = []
        for i, ops in enumerate(self.ops):
            comp = ops.pack([payload[i] for payload in column], n)
            if comp is None:
                return None
            packed.append(comp)
        return tuple(packed)

    def payload_layout(self, payload):
        return tuple(
            ops.payload_layout(comp) for ops, comp in zip(self.ops, payload)
        )

    def unpack(self, packed):
        return list(zip(*(ops.unpack(comp) for ops, comp in zip(self.ops, packed))))

    def identity(self, n):
        return tuple(ops.identity(n) for ops in self.ops)

    def mul_packed(self, a, b, n):
        return tuple(
            ops.mul_packed(x, y, n) for ops, x, y in zip(self.ops, a, b)
        )

    def add_packed(self, a, b):
        return tuple(ops.add_packed(x, y) for ops, x, y in zip(self.ops, a, b))

    def neg_packed(self, a):
        return tuple(ops.neg_packed(x) for ops, x in zip(self.ops, a))

    def reduce(self, packed, group_ids, n_groups):
        return tuple(
            ops.reduce(comp, group_ids, n_groups)
            for ops, comp in zip(self.ops, packed)
        )

    def zero_mask(self, packed):
        mask = None
        for ops, comp in zip(self.ops, packed):
            m = ops.zero_mask(comp)
            mask = m if mask is None else mask & m
        return mask if mask is not None else np.zeros(0, dtype=bool)

    # -- store hooks ----------------------------------------------------

    def alloc(self, cap, layout=None):
        if layout is None:
            layout = tuple(() for _ in self.ops)
        return tuple(
            ops.alloc(cap, comp) for ops, comp in zip(self.ops, layout)
        )

    def grow(self, block, used, cap):
        return tuple(
            ops.grow(comp, used, cap) for ops, comp in zip(self.ops, block)
        )

    def take(self, block, rows):
        return tuple(ops.take(comp, rows) for ops, comp in zip(self.ops, block))

    def put(self, block, rows, packed):
        return tuple(
            ops.put(comp, rows, values)
            for ops, comp, values in zip(self.ops, block, packed)
        )

    def add_at(self, block, rows, packed):
        return tuple(
            ops.add_at(comp, rows, values)
            for ops, comp, values in zip(self.ops, block, packed)
        )

    def zero_rows(self, block, rows):
        return tuple(ops.zero_rows(comp, rows) for ops, comp in zip(self.ops, block))


class ProductRing(Ring):
    """Component-wise product of the given rings."""

    def __init__(self, rings: Sequence[Ring]):
        if not rings:
            raise ValueError("product of zero rings is not useful")
        self.rings: Tuple[Ring, ...] = tuple(rings)
        self.name = " x ".join(r.name for r in self.rings)
        self.has_additive_inverse = all(r.has_additive_inverse for r in self.rings)
        self.is_commutative = all(r.is_commutative for r in self.rings)
        self._zero = tuple(r.zero for r in self.rings)
        self._one = tuple(r.one for r in self.rings)

    @property
    def zero(self) -> tuple:
        return self._zero

    @property
    def one(self) -> tuple:
        return self._one

    def add(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.add(x, y) for r, x, y in zip(self.rings, a, b))

    def mul(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.mul(x, y) for r, x, y in zip(self.rings, a, b))

    def neg(self, a: tuple) -> tuple:
        return tuple(r.neg(x) for r, x in zip(self.rings, a))

    def eq(self, a: tuple, b: tuple) -> bool:
        return all(r.eq(x, y) for r, x, y in zip(self.rings, a, b))

    def is_zero(self, a: tuple) -> bool:
        return all(r.is_zero(x) for r, x in zip(self.rings, a))

    def sum(self, items) -> tuple:
        """Column-wise sum: each component ring folds its own column once.

        Transposing the batch lets component rings with vectorized sums
        (cofactor, degree) fold their column in one shot instead of per
        pairwise ``add`` — and avoids allocating one intermediate tuple per
        element even for plain scalar components.
        """
        batch = items if isinstance(items, list) else list(items)
        if not batch:
            return self._zero
        if len(batch) == 1:
            return batch[0]
        return tuple(
            r.sum(column) for r, column in zip(self.rings, zip(*batch))
        )

    def from_int(self, n: int) -> tuple:
        return tuple(r.from_int(n) for r in self.rings)

    def kernel_ops(self):
        ops = getattr(self, "_kernel_ops", None)
        if ops is None:
            component_ops = [r.kernel_ops() for r in self.rings]
            if any(comp is None for comp in component_ops):
                return None
            ops = ProductKernelOps(component_ops)
            self._kernel_ops = ops
        return ops
