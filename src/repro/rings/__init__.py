"""Payload algebra: rings, semirings, and lifting functions."""

from repro.rings.base import Ring, check_ring_axioms
from repro.rings.cofactor import CofactorRing, CofactorTriple
from repro.rings.degree import DegreeRing
from repro.rings.lifting import Lifting, constant_one, numeric_identity
from repro.rings.matrix import SquareMatrixRing
from repro.rings.numeric import (
    BOOL_SEMIRING,
    INT_RING,
    REAL_RING,
    BooleanSemiring,
    IntegerRing,
    MaxProductSemiring,
    RealRing,
    VectorRing,
)
from repro.rings.product import ProductRing
from repro.rings.relational import (
    RelationalRing,
    bound_lift,
    free_lift,
    payload_relation,
)

__all__ = [
    "Ring",
    "check_ring_axioms",
    "IntegerRing",
    "RealRing",
    "BooleanSemiring",
    "MaxProductSemiring",
    "VectorRing",
    "INT_RING",
    "REAL_RING",
    "BOOL_SEMIRING",
    "SquareMatrixRing",
    "CofactorRing",
    "CofactorTriple",
    "DegreeRing",
    "ProductRing",
    "RelationalRing",
    "payload_relation",
    "free_lift",
    "bound_lift",
    "Lifting",
    "constant_one",
    "numeric_identity",
]
