"""The degree-m matrix ring of regression triples (Definition 6.2).

A payload is a triple ``(c, s, Q)`` where ``c`` counts tuples, ``s`` is the
m-vector of per-variable sums, and ``Q`` is the m×m matrix of sums of
pairwise products.  Together they are the sufficient statistics (cofactor
matrix) for learning linear regression models over the join result
(Section 6.2).

The ring product *shares computation across the quadratically many
aggregates* — the headline reason F-IVM beats scalar-payload IVM on this
workload::

    a ∗ b = (c_a c_b,
             c_b s_a + c_a s_b,
             c_b Q_a + c_a Q_b + s_a s_bᵀ + s_b s_aᵀ)

Following the paper's implementation note — "we only store as payloads
blocks of matrices with non-zero values and assemble larger matrices as the
computation progresses towards the root" — a triple stores ``s``/``Q``
restricted to its *support*: the sorted tuple of variable indices it has
seen.  Payloads near the leaves involve one or two variables and stay tiny;
only towards the root do they grow to the full degree.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.rings.base import Ring

__all__ = ["CofactorTriple", "CofactorRing", "CofactorKernelOps"]


class CofactorTriple:
    """An immutable regression triple ``(c, s, Q)`` of degree ``m``.

    ``support`` lists the variable indices the stored blocks cover; ``sums``
    has one entry per support index, ``quads`` is |support|×|support|.  An
    empty support means ``s`` and ``Q`` are entirely zero (count-only
    payloads — the ring's 0 and 1, and every leaf payload).  All operations
    return new triples; wrapped arrays are never mutated.
    """

    __slots__ = ("degree", "count", "support", "sums", "quads")

    def __init__(
        self,
        degree: int,
        count: float,
        sums: Optional[np.ndarray] = None,
        quads: Optional[np.ndarray] = None,
        support: Optional[Sequence[int]] = None,
    ):
        self.degree = degree
        self.count = float(count)
        if sums is None and quads is None and support is None:
            self.support: Tuple[int, ...] = ()
            self.sums: Optional[np.ndarray] = None
            self.quads: Optional[np.ndarray] = None
            return
        if support is None:
            # Dense construction: blocks cover every variable.
            support = tuple(range(degree))
        self.support = tuple(support)
        if not self.support:
            # Normalize: empty support always means None blocks.
            self.sums = None
            self.quads = None
            return
        k = len(self.support)
        self.sums = np.zeros(k) if sums is None else np.asarray(sums, dtype=float)
        self.quads = (
            np.zeros((k, k)) if quads is None
            else np.asarray(quads, dtype=float)
        )
        if self.sums.shape != (k,) or self.quads.shape != (k, k):
            raise ValueError(
                f"blocks {self.sums.shape}/{self.quads.shape} do not match "
                f"support of size {k}"
            )

    # ------------------------------------------------------------------

    @classmethod
    def _make(
        cls,
        degree: int,
        count: float,
        sums: Optional[np.ndarray],
        quads: Optional[np.ndarray],
        support: Tuple[int, ...],
    ) -> "CofactorTriple":
        """Internal fast constructor: no coercion, no shape validation.

        Callers (the ring operations) guarantee the invariants the public
        ``__init__`` enforces — blocks already float arrays shaped to the
        support, empty support ⇔ ``None`` blocks.  Skipping the per-triple
        ``np.asarray``/shape checks matters: IVM allocates a triple per ring
        operation on the update hot path.
        """
        triple = object.__new__(cls)
        triple.degree = degree
        triple.count = count
        triple.support = support
        triple.sums = sums
        triple.quads = quads
        return triple

    def dense_sums(self) -> np.ndarray:
        """The sum vector over all m variables (zero blocks materialized)."""
        out = np.zeros(self.degree)
        if self.sums is not None:
            out[list(self.support)] = self.sums
        return out

    def dense_quads(self) -> np.ndarray:
        """The quadratic matrix over all m variables."""
        out = np.zeros((self.degree, self.degree))
        if self.quads is not None:
            index = list(self.support)
            out[np.ix_(index, index)] = self.quads
        return out

    def moment_matrix(self) -> np.ndarray:
        """The (m+1)×(m+1) extended moment matrix ``[[c, sᵀ], [s, Q]]``.

        Row/column 0 corresponds to the constant feature 1; this is exactly
        ``MᵀM`` for the design matrix extended with an all-ones column.
        """
        m = self.degree
        out = np.zeros((m + 1, m + 1))
        out[0, 0] = self.count
        dense_s = self.dense_sums()
        out[0, 1:] = dense_s
        out[1:, 0] = dense_s
        out[1:, 1:] = self.dense_quads()
        return out

    def scalar_entries(self) -> int:
        """Stored scalars (for logical memory accounting): support-sized."""
        total = 1
        if self.sums is not None:
            total += self.sums.size
        if self.quads is not None:
            total += self.quads.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CofactorTriple(m={self.degree}, c={self.count}, "
            f"support={self.support})"
        )


#: Embedding maps memoized per (source support, target support): the sum
#: positions plus the *flattened* indices of the source's quadratic block
#: inside the target matrix.  Supports along a view tree repeat on every
#: update, and flat 1-D fancy indexing is about twice as fast as the
#: equivalent 2-D mesh assignment, so blocks are scattered through these.
_EMBED_MAPS: Dict[
    Tuple[Tuple[int, ...], Tuple[int, ...]],
    Tuple[np.ndarray, np.ndarray],
] = {}

#: Merge maps memoized per (left support, right support): the union
#: support and every index vector a pairwise add/mul needs — one cache hit
#: per ring operation.
_MERGE_MAPS: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], tuple] = {}


def _embed_maps(
    source: Tuple[int, ...], target: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    key = (source, target)
    maps = _EMBED_MAPS.get(key)
    if maps is None:
        positions = np.array(
            [target.index(i) for i in source], dtype=np.intp
        )
        k = len(target)
        flat = (positions[:, None] * k + positions[None, :]).ravel()
        maps = (positions, flat)
        _EMBED_MAPS[key] = maps
    return maps


def _merge_maps(left: Tuple[int, ...], right: Tuple[int, ...]) -> tuple:
    """``(union, k, pos_l, pos_r, flat_ll, flat_rr, flat_lr, flat_rl)``
    for scattering both operands (and their cross blocks) onto the union."""
    key = (left, right)
    maps = _MERGE_MAPS.get(key)
    if maps is None:
        union = tuple(sorted(set(left) | set(right)))
        k = len(union)
        pos_l = np.array([union.index(i) for i in left], dtype=np.intp)
        pos_r = np.array([union.index(i) for i in right], dtype=np.intp)
        maps = (
            union,
            k,
            pos_l,
            pos_r,
            (pos_l[:, None] * k + pos_l[None, :]).ravel(),
            (pos_r[:, None] * k + pos_r[None, :]).ravel(),
            (pos_l[:, None] * k + pos_r[None, :]).ravel(),
            (pos_r[:, None] * k + pos_l[None, :]).ravel(),
        )
        _MERGE_MAPS[key] = maps
    return maps




class CofactorRing(Ring):
    """The degree-m matrix ring ``(D, +_D, ∗_D, 0, 1)`` of Definition 6.2."""

    def __init__(self, degree: int, tolerance: float = 1e-7):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.tolerance = tolerance
        self.name = f"cofactor[{degree}]"
        self._zero = CofactorTriple(degree, 0.0)
        self._one = CofactorTriple(degree, 1.0)

    @property
    def zero(self) -> CofactorTriple:
        return self._zero

    @property
    def one(self) -> CofactorTriple:
        return self._one

    def add(self, a: CofactorTriple, b: CofactorTriple) -> CofactorTriple:
        make = CofactorTriple._make
        if not b.support:
            return make(
                self.degree, a.count + b.count, a.sums, a.quads, a.support
            )
        if not a.support:
            return make(
                self.degree, a.count + b.count, b.sums, b.quads, b.support
            )
        if a.support == b.support:
            return make(
                self.degree,
                a.count + b.count,
                a.sums + b.sums,
                a.quads + b.quads,
                a.support,
            )
        union, k, pos_a, pos_b, flat_aa, flat_bb, _, _ = _merge_maps(
            a.support, b.support
        )
        if union == a.support:
            sums = a.sums.copy()
            quads = a.quads.copy()
            sums[pos_b] += b.sums
            quads.ravel()[flat_bb] += b.quads.ravel()
        elif union == b.support:
            sums = b.sums.copy()
            quads = b.quads.copy()
            sums[pos_a] += a.sums
            quads.ravel()[flat_aa] += a.quads.ravel()
        else:
            sums = np.zeros(k)
            sums[pos_a] = a.sums
            sums[pos_b] += b.sums
            flat = np.zeros(k * k)
            flat[flat_aa] = a.quads.ravel()
            flat[flat_bb] += b.quads.ravel()
            quads = flat.reshape(k, k)
        return make(self.degree, a.count + b.count, sums, quads, union)

    def mul(self, a: CofactorTriple, b: CofactorTriple) -> CofactorTriple:
        count = a.count * b.count
        make = CofactorTriple._make
        if not b.support:
            if b.count == 1.0:
                # b = 1: triples are immutable, so the product *is* a.
                return a
            if not a.support:
                return make(self.degree, count, None, None, ())
            # b is count-only: pure scaling of a's blocks.
            return make(
                self.degree, count,
                b.count * a.sums, b.count * a.quads, a.support,
            )
        if not a.support:
            if a.count == 1.0:
                return b
            return make(
                self.degree, count,
                a.count * b.sums, a.count * b.quads, b.support,
            )
        if a.support == b.support:
            # Equal supports: dense arithmetic, no scatter needed.
            cross = a.sums[:, None] * b.sums[None, :]
            return make(
                self.degree,
                count,
                b.count * a.sums + a.count * b.sums,
                b.count * a.quads + a.count * b.quads + cross + cross.T,
                a.support,
            )
        union, k, pos_a, pos_b, flat_aa, flat_bb, flat_ab, flat_ba = (
            _merge_maps(a.support, b.support)
        )
        if union == a.support and len(b.support) == 1:
            # The hot shape of the trigger loop: an accumulated payload times
            # a lifted single variable already inside its support.  The cross
            # term touches one row and one column only; everything else is a
            # scalar scale (or, for lifts with count 1, a plain copy).
            j = pos_b[0]
            sb0 = b.sums[0]
            if b.count == 1.0:
                sums = a.sums.copy()
                quads = a.quads.copy()
            else:
                sums = b.count * a.sums
                quads = b.count * a.quads
            sums[j] += a.count * sb0
            quads[j, j] += a.count * b.quads[0, 0]
            cross_line = a.sums * sb0
            quads[:, j] += cross_line
            quads[j, :] += cross_line
            return make(self.degree, count, sums, quads, union)
        # General case: assemble the result blocks directly on the union
        # support.  Each input contributes only on its own positions, and the
        # cross term ``s_a s_bᵀ + s_b s_aᵀ`` is non-zero only on the
        # (a-positions × b-positions) blocks — scattering input-sized blocks
        # through the cached flat maps avoids materializing two union-sized
        # embeddings per multiplication.
        cross = a.sums[:, None] * b.sums[None, :]
        if union == a.support:
            sums = b.count * a.sums
            sums[pos_b] += a.count * b.sums
            quads = b.count * a.quads
            flat = quads.ravel()
            flat[flat_bb] += (a.count * b.quads).ravel()
        elif union == b.support:
            sums = a.count * b.sums
            sums[pos_a] += b.count * a.sums
            quads = a.count * b.quads
            flat = quads.ravel()
            flat[flat_aa] += (b.count * a.quads).ravel()
        else:
            sums = np.zeros(k)
            sums[pos_a] = b.count * a.sums
            sums[pos_b] += a.count * b.sums
            flat = np.zeros(k * k)
            flat[flat_aa] = (b.count * a.quads).ravel()
            flat[flat_bb] += (a.count * b.quads).ravel()
            quads = flat.reshape(k, k)
        flat[flat_ab] += cross.ravel()
        flat[flat_ba] += cross.T.ravel()
        return make(self.degree, count, sums, quads, union)

    def neg(self, a: CofactorTriple) -> CofactorTriple:
        if not a.support:
            return CofactorTriple._make(self.degree, -a.count, None, None, ())
        return CofactorTriple._make(
            self.degree, -a.count, -a.sums, -a.quads, a.support
        )

    def eq(self, a: CofactorTriple, b: CofactorTriple) -> bool:
        if abs(a.count - b.count) > self.tolerance:
            return False
        if a.support == b.support:
            if a.sums is None:
                return True
            return bool(
                np.allclose(a.sums, b.sums, atol=self.tolerance)
                and np.allclose(a.quads, b.quads, atol=self.tolerance)
            )
        if not np.allclose(a.dense_sums(), b.dense_sums(), atol=self.tolerance):
            return False
        return bool(
            np.allclose(a.dense_quads(), b.dense_quads(), atol=self.tolerance)
        )

    def is_zero(self, a: CofactorTriple) -> bool:
        if abs(a.count) > self.tolerance:
            return False
        if a.sums is not None and np.any(np.abs(a.sums) > self.tolerance):
            return False
        if a.quads is not None and np.any(np.abs(a.quads) > self.tolerance):
            return False
        return True

    def sum(self, items) -> CofactorTriple:
        """Vectorized sum: stack same-support blocks, scatter across groups.

        Same result as the base class's pairwise fold (ring addition is
        commutative), but a batch of n same-support triples costs two
        stacked ``np.sum`` calls instead of n-1 pairs of allocations — the
        backbone of the batched update trigger.
        """
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return self._zero
        if len(triples) == 1:
            return triples[0]
        count = 0.0
        groups: Dict[Tuple[int, ...], list] = {}
        for triple in triples:
            count += triple.count
            if triple.support:
                groups.setdefault(triple.support, []).append(triple)
        make = CofactorTriple._make
        if not groups:
            return make(self.degree, count, None, None, ())
        partials = []
        for support, members in groups.items():
            if len(members) == 1:
                partials.append((support, members[0].sums, members[0].quads))
            else:
                partials.append((
                    support,
                    np.sum([t.sums for t in members], axis=0),
                    np.sum([t.quads for t in members], axis=0),
                ))
        if len(partials) == 1:
            # Sharing the group's arrays is safe: triples never mutate
            # their blocks, whatever triple they end up wrapped in.
            support, sums, quads = partials[0]
            return make(self.degree, count, sums, quads, support)
        union_set: set = set()
        for support, _, _ in partials:
            union_set |= set(support)
        union = tuple(sorted(union_set))
        k = len(union)
        total_sums = np.zeros(k)
        total_flat = np.zeros(k * k)
        for support, sums, quads in partials:
            positions, flat = _embed_maps(support, union)
            total_sums[positions] += sums
            total_flat[flat] += quads.ravel()
        return make(
            self.degree, count, total_sums, total_flat.reshape(k, k), union
        )

    def from_int(self, n: int) -> CofactorTriple:
        return CofactorTriple(self.degree, float(n))

    def kernel_ops(self) -> "CofactorKernelOps":
        ops = getattr(self, "_kernel_ops", None)
        if ops is None:
            ops = CofactorKernelOps(self)
            self._kernel_ops = ops
        return ops

    def lift(self, index: int) -> Callable[[object], CofactorTriple]:
        """The lifting function ``g_{X_j}`` of Section 6.2 for variable ``j``.

        Maps a value ``x`` to ``(1, s, Q)`` with ``s[j] = x`` and
        ``Q[j, j] = x²`` — stored as single-variable blocks.
        """
        if not 0 <= index < self.degree:
            raise ValueError(f"variable index {index} out of range")
        support = (index,)

        degree = self.degree
        make = CofactorTriple._make
        #: Lifted triples memoized per value: streams revisit domain values
        #: constantly, and lifted triples (like all triples) are immutable.
        #: Bounded so continuous features (mostly-distinct floats) cannot
        #: grow it without limit — on overflow the memo simply resets.
        memo: Dict[object, CofactorTriple] = {}
        memo_cap = 1 << 16

        def _lift(value: object) -> CofactorTriple:
            triple = memo.get(value)
            if triple is None:
                x = float(value)  # type: ignore[arg-type]
                triple = make(
                    degree,
                    1.0,
                    np.array([x]),
                    np.array([[x * x]]),
                    support,
                )
                if len(memo) >= memo_cap:
                    memo.clear()
                memo[value] = triple
            return triple

        #: Tag for the kernel backend: a whole column of lifted values
        #: packs directly from the raw floats (no per-row triples) — see
        #: :meth:`CofactorKernelOps.pack_lift`.
        _lift._kernel_lift = ("cofactor", index)
        return _lift


# ----------------------------------------------------------------------
# Array pack/unpack hooks (the NumPy kernel backend)
# ----------------------------------------------------------------------


class CofactorKernelOps:
    """Batched triple arithmetic for the kernel backend.

    A column of n same-support triples packs into ``(counts (n,), sums
    (n, k), quads (n, k, k), support)`` — the structure-of-arrays twin of
    :class:`CofactorTriple`.  The ring product of two packed columns is
    the vectorized Definition 6.2 formula (cross terms scattered through
    the cached flat merge maps, exactly like the scalar :meth:`mul`), and
    the per-output-key fold is one sort + ``np.add.reduceat`` pass over
    the stacked blocks — n ring operations collapse into a handful of
    array expressions.

    Mixed-support columns (rare: payloads at one tree node share their
    support by construction, since support = the variables lifted below)
    return ``None`` from :meth:`pack`, signalling the kernel program to
    fall back to the scalar ring fold for that batch — a correctness
    escape hatch, not a soundness condition.
    """

    __slots__ = ("ring", "degree")

    def __init__(self, ring: "CofactorRing"):
        self.ring = ring
        self.degree = ring.degree

    # -- packing -------------------------------------------------------

    def pack(self, column, n: int):
        """Stack a payload column; ``None`` when supports are mixed."""
        first = column[0].support
        for triple in column:
            if triple.support != first:
                return None
        counts = np.fromiter(
            (triple.count for triple in column), dtype=float, count=n
        )
        if not first:
            return (counts, None, None, ())
        sums = np.array([triple.sums for triple in column])
        quads = np.array([triple.quads for triple in column])
        return (counts, sums, quads, first)

    def pack_lift(self, lift_fn, values, n: int):
        """Pack a lifted column straight from the raw values.

        ``ring.lift(j)`` maps ``x`` to ``(1, s[j]=x, Q[jj]=x²)``, so a
        whole column of lift results is ``(ones, x, x²)`` on support
        ``(j,)`` — no per-row triple construction.  Returns ``None`` for
        lift functions this ring did not produce (custom liftings take
        the generic per-row path).
        """
        tag = getattr(lift_fn, "_kernel_lift", None)
        if tag is None or tag[0] != "cofactor":
            return None
        x = np.fromiter((float(v) for v in values), dtype=float, count=n)
        return (
            np.ones(n, dtype=float),
            x[:, None],
            (x * x)[:, None, None],
            (tag[1],),
        )

    # -- the vectorized ring product -----------------------------------

    def _mul(self, a, b, n: int):
        ca, sa, qa, supa = a
        cb, sb, qb, supb = b
        count = ca * cb
        if not supb:
            if not supa:
                return (count, None, None, ())
            return (count, cb[:, None] * sa, cb[:, None, None] * qa, supa)
        if not supa:
            return (count, ca[:, None] * sb, ca[:, None, None] * qb, supb)
        if supa == supb:
            cross = sa[:, :, None] * sb[:, None, :]
            return (
                count,
                cb[:, None] * sa + ca[:, None] * sb,
                cb[:, None, None] * qa + ca[:, None, None] * qb
                + cross + cross.transpose(0, 2, 1),
                supa,
            )
        union, k, pos_a, pos_b, flat_aa, flat_bb, flat_ab, flat_ba = (
            _merge_maps(supa, supb)
        )
        sums = np.zeros((n, k))
        sums[:, pos_a] = cb[:, None] * sa
        sums[:, pos_b] += ca[:, None] * sb
        flat = np.zeros((n, k * k))
        flat[:, flat_aa] = cb[:, None] * qa.reshape(n, -1)
        flat[:, flat_bb] += ca[:, None] * qb.reshape(n, -1)
        cross = sa[:, :, None] * sb[:, None, :]
        flat[:, flat_ab] += cross.reshape(n, -1)
        flat[:, flat_ba] += cross.transpose(0, 2, 1).reshape(n, -1)
        return (count, sums, flat.reshape(n, k, k), union)

    def combine(self, n: int, factor_cols, lift_cols):
        """Row-wise product of all payload columns (lift columns map their
        raw key values through the memoizing lift first); ``None`` falls
        back to the scalar path."""
        packed = None
        for col in factor_cols:
            p = self.pack(col, n)
            if p is None:
                return None
            packed = p if packed is None else self._mul(packed, p, n)
        for lift, col in lift_cols:
            p = self.pack([lift(value) for value in col], n)
            if p is None:  # pragma: no cover - lifts share one support
                return None
            packed = p if packed is None else self._mul(packed, p, n)
        if packed is None:
            packed = (np.ones(n), None, None, ())
        return packed

    # -- grouped reduction ---------------------------------------------

    def reduce(self, packed, group_ids, n_groups: int):
        """Fold rows per output key: counts via ``np.bincount``, blocks by
        sorting on the group id and one ``np.add.reduceat`` per block kind.
        Every group id in ``range(n_groups)`` must occur (the kernel
        program assigns ids first-seen), so the reduceat segments line up
        with the group numbering."""
        counts, sums, quads, support = packed
        red_counts = np.bincount(group_ids, weights=counts, minlength=n_groups)
        if sums is None:
            return (red_counts, None, None, ())
        n = len(group_ids)
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
        )
        red_sums = np.add.reduceat(sums[order], starts, axis=0)
        red_quads = np.add.reduceat(
            quads.reshape(n, -1)[order], starts, axis=0
        )
        k = len(support)
        return (red_counts, red_sums, red_quads.reshape(-1, k, k), support)

    def unpack(self, reduced):
        """Per-group :class:`CofactorTriple` views over the reduced blocks
        (safe to share: triples never mutate their blocks)."""
        counts, sums, quads, support = reduced
        make = CofactorTriple._make
        degree = self.degree
        if sums is None:
            return [
                make(degree, count, None, None, ()) for count in counts
            ]
        return [
            make(degree, counts[g], sums[g], quads[g], support)
            for g in range(len(counts))
        ]

    # -- packed-column protocol (zero-pack kernels + columnar storage) --

    def payload_layout(self, payload):
        return payload.support

    def mul_packed(self, a, b, n: int):
        return self._mul(a, b, n)

    def identity(self, n: int):
        return (np.ones(n), None, None, ())

    def _embed(self, packed, union):
        """Re-express a packed column on a superset support (zero-filled)."""
        counts, sums, quads, support = packed
        if support == union:
            return packed
        n = len(counts)
        k = len(union)
        out_sums = np.zeros((n, k))
        out_flat = np.zeros((n, k * k))
        if support:
            positions, flat = _embed_maps(support, union)
            out_sums[:, positions] = sums
            out_flat[:, flat] = quads.reshape(n, -1)
        return (counts, out_sums, out_flat.reshape(n, k, k), union)

    def add_packed(self, a, b):
        if a[3] != b[3]:
            union = tuple(sorted(set(a[3]) | set(b[3])))
            a = self._embed(a, union)
            b = self._embed(b, union)
        counts = a[0] + b[0]
        if a[1] is None:
            return (counts, None, None, ())
        return (counts, a[1] + b[1], a[2] + b[2], a[3])

    def neg_packed(self, a):
        counts, sums, quads, support = a
        if sums is None:
            return (-counts, None, None, ())
        return (-counts, -sums, -quads, support)

    def zero_mask(self, packed):
        counts, sums, quads, _ = packed
        tolerance = self.ring.tolerance
        mask = np.abs(counts) <= tolerance
        if sums is not None:
            n = len(counts)
            mask = mask & (np.abs(sums) <= tolerance).all(axis=1)
            mask = mask & (
                np.abs(quads.reshape(n, -1)) <= tolerance
            ).all(axis=1)
        return mask

    # -- store hooks (preallocated blocks, in-place row updates) --------

    def alloc(self, cap: int, layout=()):
        support = tuple(layout)
        if not support:
            return (np.zeros(cap), None, None, ())
        k = len(support)
        return (np.zeros(cap), np.zeros((cap, k)), np.zeros((cap, k, k)), support)

    def grow(self, block, used: int, cap: int):
        counts, sums, quads, support = block
        out = self.alloc(cap, support)
        out[0][:used] = counts[:used]
        if support:
            out[1][:used] = sums[:used]
            out[2][:used] = quads[:used]
        return out

    def take(self, block, rows):
        counts, sums, quads, support = block
        if sums is None:
            return (counts[rows], None, None, ())
        return (counts[rows], sums[rows], quads[rows], support)

    def _unify_block(self, block, packed):
        """Widen ``block`` and/or embed ``packed`` onto a shared support."""
        support = block[3]
        if packed[3] != support:
            union = tuple(sorted(set(support) | set(packed[3])))
            if union != support:
                cap = len(block[0])
                widened = self.alloc(cap, union)
                widened[0][:] = block[0]
                if support:
                    positions, flat = _embed_maps(support, union)
                    widened[1][:, positions] = block[1]
                    widened[2].reshape(cap, -1)[:, flat] = block[2].reshape(
                        cap, -1
                    )
                block = widened
            packed = self._embed(packed, union)
        return block, packed

    def put(self, block, rows, packed):
        block, packed = self._unify_block(block, packed)
        block[0][rows] = packed[0]
        if block[3]:
            block[1][rows] = packed[1]
            block[2][rows] = packed[2]
        return block

    def add_at(self, block, rows, packed):
        block, packed = self._unify_block(block, packed)
        np.add.at(block[0], rows, packed[0])
        if block[3]:
            np.add.at(block[1], rows, packed[1])
            np.add.at(block[2], rows, packed[2])
        return block

    def zero_rows(self, block, rows):
        block[0][rows] = 0.0
        if block[3]:
            block[1][rows] = 0.0
            block[2][rows] = 0.0
        return block
