"""The degree-m matrix ring of regression triples (Definition 6.2).

A payload is a triple ``(c, s, Q)`` where ``c`` counts tuples, ``s`` is the
m-vector of per-variable sums, and ``Q`` is the m×m matrix of sums of
pairwise products.  Together they are the sufficient statistics (cofactor
matrix) for learning linear regression models over the join result
(Section 6.2).

The ring product *shares computation across the quadratically many
aggregates* — the headline reason F-IVM beats scalar-payload IVM on this
workload::

    a ∗ b = (c_a c_b,
             c_b s_a + c_a s_b,
             c_b Q_a + c_a Q_b + s_a s_bᵀ + s_b s_aᵀ)

Following the paper's implementation note — "we only store as payloads
blocks of matrices with non-zero values and assemble larger matrices as the
computation progresses towards the root" — a triple stores ``s``/``Q``
restricted to its *support*: the sorted tuple of variable indices it has
seen.  Payloads near the leaves involve one or two variables and stay tiny;
only towards the root do they grow to the full degree.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.rings.base import Ring

__all__ = ["CofactorTriple", "CofactorRing"]


class CofactorTriple:
    """An immutable regression triple ``(c, s, Q)`` of degree ``m``.

    ``support`` lists the variable indices the stored blocks cover; ``sums``
    has one entry per support index, ``quads`` is |support|×|support|.  An
    empty support means ``s`` and ``Q`` are entirely zero (count-only
    payloads — the ring's 0 and 1, and every leaf payload).  All operations
    return new triples; wrapped arrays are never mutated.
    """

    __slots__ = ("degree", "count", "support", "sums", "quads")

    def __init__(
        self,
        degree: int,
        count: float,
        sums: Optional[np.ndarray] = None,
        quads: Optional[np.ndarray] = None,
        support: Optional[Sequence[int]] = None,
    ):
        self.degree = degree
        self.count = float(count)
        if sums is None and quads is None and support is None:
            self.support: Tuple[int, ...] = ()
            self.sums: Optional[np.ndarray] = None
            self.quads: Optional[np.ndarray] = None
            return
        if support is None:
            # Dense construction: blocks cover every variable.
            support = tuple(range(degree))
        self.support = tuple(support)
        if not self.support:
            # Normalize: empty support always means None blocks.
            self.sums = None
            self.quads = None
            return
        k = len(self.support)
        self.sums = np.zeros(k) if sums is None else np.asarray(sums, dtype=float)
        self.quads = (
            np.zeros((k, k)) if quads is None
            else np.asarray(quads, dtype=float)
        )
        if self.sums.shape != (k,) or self.quads.shape != (k, k):
            raise ValueError(
                f"blocks {self.sums.shape}/{self.quads.shape} do not match "
                f"support of size {k}"
            )

    # ------------------------------------------------------------------

    def dense_sums(self) -> np.ndarray:
        """The sum vector over all m variables (zero blocks materialized)."""
        out = np.zeros(self.degree)
        if self.sums is not None:
            out[list(self.support)] = self.sums
        return out

    def dense_quads(self) -> np.ndarray:
        """The quadratic matrix over all m variables."""
        out = np.zeros((self.degree, self.degree))
        if self.quads is not None:
            index = list(self.support)
            out[np.ix_(index, index)] = self.quads
        return out

    def moment_matrix(self) -> np.ndarray:
        """The (m+1)×(m+1) extended moment matrix ``[[c, sᵀ], [s, Q]]``.

        Row/column 0 corresponds to the constant feature 1; this is exactly
        ``MᵀM`` for the design matrix extended with an all-ones column.
        """
        m = self.degree
        out = np.zeros((m + 1, m + 1))
        out[0, 0] = self.count
        dense_s = self.dense_sums()
        out[0, 1:] = dense_s
        out[1:, 0] = dense_s
        out[1:, 1:] = self.dense_quads()
        return out

    def scalar_entries(self) -> int:
        """Stored scalars (for logical memory accounting): support-sized."""
        total = 1
        if self.sums is not None:
            total += self.sums.size
        if self.quads is not None:
            total += self.quads.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CofactorTriple(m={self.degree}, c={self.count}, "
            f"support={self.support})"
        )


def _embed(
    triple: CofactorTriple, support: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Blocks of ``triple`` re-indexed onto a (larger) support."""
    k = len(support)
    sums = np.zeros(k)
    quads = np.zeros((k, k))
    if triple.sums is not None:
        positions = [support.index(i) for i in triple.support]
        sums[positions] = triple.sums
        quads[np.ix_(positions, positions)] = triple.quads
    return sums, quads


class CofactorRing(Ring):
    """The degree-m matrix ring ``(D, +_D, ∗_D, 0, 1)`` of Definition 6.2."""

    def __init__(self, degree: int, tolerance: float = 1e-7):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.tolerance = tolerance
        self.name = f"cofactor[{degree}]"
        self._zero = CofactorTriple(degree, 0.0)
        self._one = CofactorTriple(degree, 1.0)

    @property
    def zero(self) -> CofactorTriple:
        return self._zero

    @property
    def one(self) -> CofactorTriple:
        return self._one

    def _union_support(
        self, a: CofactorTriple, b: CofactorTriple
    ) -> Tuple[int, ...]:
        if a.support == b.support:
            return a.support
        return tuple(sorted(set(a.support) | set(b.support)))

    def add(self, a: CofactorTriple, b: CofactorTriple) -> CofactorTriple:
        if not b.support:
            return CofactorTriple(
                self.degree, a.count + b.count, a.sums, a.quads, a.support
            )
        if not a.support:
            return CofactorTriple(
                self.degree, a.count + b.count, b.sums, b.quads, b.support
            )
        if a.support == b.support:
            return CofactorTriple(
                self.degree,
                a.count + b.count,
                a.sums + b.sums,
                a.quads + b.quads,
                a.support,
            )
        support = self._union_support(a, b)
        sa, qa = _embed(a, support)
        sb, qb = _embed(b, support)
        return CofactorTriple(
            self.degree, a.count + b.count, sa + sb, qa + qb, support
        )

    def mul(self, a: CofactorTriple, b: CofactorTriple) -> CofactorTriple:
        count = a.count * b.count
        if not a.support and not b.support:
            return CofactorTriple(self.degree, count)
        if not b.support:
            # b is count-only: pure scaling of a's blocks.
            return CofactorTriple(
                self.degree, count,
                b.count * a.sums, b.count * a.quads, a.support,
            )
        if not a.support:
            return CofactorTriple(
                self.degree, count,
                a.count * b.sums, a.count * b.quads, b.support,
            )
        support = self._union_support(a, b)
        sa, qa = (a.sums, a.quads) if support == a.support else _embed(a, support)
        sb, qb = (b.sums, b.quads) if support == b.support else _embed(b, support)
        cross = np.outer(sa, sb)
        return CofactorTriple(
            self.degree,
            count,
            b.count * sa + a.count * sb,
            b.count * qa + a.count * qb + cross + cross.T,
            support,
        )

    def neg(self, a: CofactorTriple) -> CofactorTriple:
        if not a.support:
            return CofactorTriple(self.degree, -a.count)
        return CofactorTriple(
            self.degree, -a.count, -a.sums, -a.quads, a.support
        )

    def eq(self, a: CofactorTriple, b: CofactorTriple) -> bool:
        if abs(a.count - b.count) > self.tolerance:
            return False
        if a.support == b.support:
            if a.sums is None:
                return True
            return bool(
                np.allclose(a.sums, b.sums, atol=self.tolerance)
                and np.allclose(a.quads, b.quads, atol=self.tolerance)
            )
        if not np.allclose(a.dense_sums(), b.dense_sums(), atol=self.tolerance):
            return False
        return bool(
            np.allclose(a.dense_quads(), b.dense_quads(), atol=self.tolerance)
        )

    def is_zero(self, a: CofactorTriple) -> bool:
        if abs(a.count) > self.tolerance:
            return False
        if a.sums is not None and np.any(np.abs(a.sums) > self.tolerance):
            return False
        if a.quads is not None and np.any(np.abs(a.quads) > self.tolerance):
            return False
        return True

    def from_int(self, n: int) -> CofactorTriple:
        return CofactorTriple(self.degree, float(n))

    def lift(self, index: int) -> Callable[[object], CofactorTriple]:
        """The lifting function ``g_{X_j}`` of Section 6.2 for variable ``j``.

        Maps a value ``x`` to ``(1, s, Q)`` with ``s[j] = x`` and
        ``Q[j, j] = x²`` — stored as single-variable blocks.
        """
        if not 0 <= index < self.degree:
            raise ValueError(f"variable index {index} out of range")
        support = (index,)

        def _lift(value: object) -> CofactorTriple:
            x = float(value)  # type: ignore[arg-type]
            return CofactorTriple(
                self.degree,
                1.0,
                np.array([x]),
                np.array([[x * x]]),
                support,
            )

        return _lift
