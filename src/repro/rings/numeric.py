"""Scalar (semi)rings: ℤ, ℝ, Booleans, max-product, and fixed-width vectors.

These are the workhorse payload domains for COUNT and SUM queries (Examples
2.2 and 2.3 of the paper) and the building blocks for compound aggregates.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.rings.base import Ring

__all__ = [
    "IntegerRing",
    "RealRing",
    "BooleanSemiring",
    "MaxProductSemiring",
    "VectorRing",
    "ScalarKernelOps",
    "INT_RING",
    "REAL_RING",
    "BOOL_SEMIRING",
]


class ScalarKernelOps:
    """Array pack/unpack hooks for scalar rings (the kernel backend).

    Payload columns become one NumPy array each; the payload product is an
    element-wise array multiply, lifting maps the raw key values before
    packing, and the per-output-key ``Ring.sum`` fold becomes one grouped
    reduction (``np.bincount`` over the group-id vector).  Semantically
    identical to the scalar fold — addition and multiplication of machine
    scalars are exact within the dtype (ℤ payloads ride int64: overflow
    beyond 2⁶³ is out of scope for multiplicity counting).

    Beyond the original combine/reduce/unpack protocol this implements the
    *store* hooks (:mod:`repro.data.columnar`): a payload block is one
    preallocated array, rows are written/accumulated in place, and zero
    detection is a vectorized mask.  The scalar layout is trivial
    (``()``) — every payload packs the same way.
    """

    __slots__ = ("dtype", "tolerance")

    def __init__(self, dtype, tolerance: float = 0.0):
        self.dtype = dtype
        self.tolerance = tolerance

    def combine(self, n, factor_cols, lift_cols):
        """The row-wise payload product of all columns (length-``n``)."""
        arr = None
        for col in factor_cols:
            a = np.asarray(col, dtype=self.dtype)
            arr = a if arr is None else arr * a
        for lift, col in lift_cols:
            a = np.asarray([lift(value) for value in col], dtype=self.dtype)
            arr = a if arr is None else arr * a
        if arr is None:
            arr = np.ones(n, dtype=self.dtype)
        return arr

    def reduce(self, packed, group_ids, n_groups):
        """Fold rows onto their output keys (one grouped reduction)."""
        if self.dtype is np.float64:
            return np.bincount(group_ids, weights=packed, minlength=n_groups)
        out = np.zeros(n_groups, dtype=self.dtype)
        np.add.at(out, group_ids, packed)
        return out

    def unpack(self, reduced):
        return reduced.tolist()

    # -- packed-column protocol (zero-pack kernels + columnar storage) --

    def pack(self, column, n):
        return np.asarray(column, dtype=self.dtype)

    def payload_layout(self, payload):
        return ()

    def mul_packed(self, a, b, n):
        return a * b

    def identity(self, n):
        return np.ones(n, dtype=self.dtype)

    def add_packed(self, a, b):
        return a + b

    def neg_packed(self, a):
        return -a

    def zero_mask(self, packed):
        if self.tolerance:
            return np.abs(packed) <= self.tolerance
        return packed == 0

    # -- store hooks (preallocated blocks, in-place row updates) --------

    def alloc(self, cap, layout=()):
        return np.zeros(cap, dtype=self.dtype)

    def grow(self, block, used, cap):
        out = np.zeros(cap, dtype=self.dtype)
        out[:used] = block[:used]
        return out

    def take(self, block, rows):
        return block[rows]

    def put(self, block, rows, packed):
        block[rows] = packed
        return block

    def add_at(self, block, rows, packed):
        np.add.at(block, rows, packed)
        return block

    def zero_rows(self, block, rows):
        block[rows] = 0
        return block


class IntegerRing(Ring):
    """The ring ℤ of integers; the default ring for multiplicities."""

    name = "Z"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def neg(self, a: int) -> int:
        return -a

    def from_int(self, n: int) -> int:
        return n

    def sum(self, items) -> int:
        return sum(items)

    def kernel_ops(self):
        ops = getattr(self, "_kernel_ops", None)
        if ops is None:
            ops = ScalarKernelOps(np.int64)
            self._kernel_ops = ops
        return ops


class RealRing(Ring):
    """The ring ℝ of floats with tolerance-based zero/equality tests.

    Floating-point sums do not cancel exactly under insert/delete churn, so
    ``is_zero`` uses an absolute tolerance; without it deleted keys would
    linger in views with payloads like ``1e-17``.
    """

    name = "R"

    def __init__(self, tolerance: float = 1e-9):
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a + b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def neg(self, a: float) -> float:
        return -a

    def eq(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=self.tolerance)

    def is_zero(self, a: float) -> bool:
        return abs(a) <= self.tolerance

    def from_int(self, n: int) -> float:
        return float(n)

    def sum(self, items) -> float:
        return sum(items)

    def kernel_ops(self):
        ops = getattr(self, "_kernel_ops", None)
        if ops is None:
            ops = ScalarKernelOps(np.float64, tolerance=self.tolerance)
            self._kernel_ops = ops
        return ops


class BooleanSemiring(Ring):
    """The Boolean semiring ({true, false}, ∨, ∧); no deletions possible."""

    name = "B"
    has_additive_inverse = False

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def from_int(self, n: int) -> bool:
        if n < 0:
            raise ValueError("Boolean semiring has no additive inverse")
        return n > 0


class MaxProductSemiring(Ring):
    """The max-product semiring (ℝ₊, max, ×, 0, 1) from Appendix A.

    Useful for maximum-probability style aggregates; supports inserts only.
    """

    name = "max-product"
    has_additive_inverse = False

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a if a >= b else b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def eq(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    def from_int(self, n: int) -> float:
        if n < 0:
            raise ValueError("max-product semiring has no additive inverse")
        return 1.0 if n > 0 else 0.0


class VectorRing(Ring):
    """ℝ^k with element-wise operations (the paper's ℝ², ℝ³ examples).

    A cheap way to maintain ``k`` independent SUM aggregates in one payload;
    the degree-m matrix ring of :mod:`repro.rings.cofactor` goes further and
    *shares* computation across aggregates.
    """

    name = "R^k"

    def __init__(self, width: int, tolerance: float = 1e-9):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.tolerance = tolerance
        self._zero: Tuple[float, ...] = (0.0,) * width
        self._one: Tuple[float, ...] = (1.0,) * width
        self.name = f"R^{width}"

    @property
    def zero(self) -> Tuple[float, ...]:
        return self._zero

    @property
    def one(self) -> Tuple[float, ...]:
        return self._one

    def add(self, a, b):
        return tuple(x + y for x, y in zip(a, b))

    def mul(self, a, b):
        return tuple(x * y for x, y in zip(a, b))

    def neg(self, a):
        return tuple(-x for x in a)

    def eq(self, a, b) -> bool:
        return all(
            math.isclose(x, y, rel_tol=1e-9, abs_tol=self.tolerance)
            for x, y in zip(a, b)
        )

    def is_zero(self, a) -> bool:
        return all(abs(x) <= self.tolerance for x in a)

    def from_int(self, n: int):
        return (float(n),) * self.width


#: Shared default instances (rings are stateless, so sharing is safe).
INT_RING = IntegerRing()
REAL_RING = RealRing()
BOOL_SEMIRING = BooleanSemiring()
