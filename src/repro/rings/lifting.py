"""Lifting functions ``g_X : Dom(X) → D`` and per-query lifting tables.

Marginalization ``⊕_X`` multiplies each payload by the lift of the value
being aggregated away (Section 2).  The choice of lifts — together with the
ring — is what differentiates the applications:

* COUNT:               every variable lifts to ``1``;
* SUM(f(X)):           ``X`` lifts to ``f(x)``, others to ``1``;
* cofactor matrices:   ``X_j`` lifts to ``(1, s_j = x, Q_jj = x²)``;
* conjunctive queries: free variables lift to ``{(x) → 1}``, bound to
  ``{() → 1}``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.rings.base import Ring, RingElement

__all__ = ["Lifting", "constant_one", "numeric_identity"]

LiftFn = Callable[[Any], RingElement]


def constant_one(ring: Ring) -> LiftFn:
    """The lift mapping every value to the ring's ``1`` (COUNT semantics)."""
    one = ring.one
    return lambda value: one


def numeric_identity(ring: Ring) -> LiftFn:
    """The lift mapping a numeric value to itself, embedded in the ring.

    Assumes the ring's elements are plain numbers (ℤ or ℝ); this is the
    ``g_B(x) = x`` lift of Example 2.3.
    """
    return lambda value: value


class Lifting:
    """A per-variable table of lifting functions with a default.

    Variables without an explicit entry lift to ``1``, so COUNT-style
    marginalization needs no configuration.  ``None`` entries also mean the
    constant-one lift; the relation layer skips the multiplication entirely
    in that case, which is the fast path.
    """

    def __init__(
        self,
        ring: Ring,
        lifts: Optional[Mapping[str, LiftFn]] = None,
    ):
        self.ring = ring
        self._lifts: Dict[str, LiftFn] = dict(lifts or {})

    def set(self, variable: str, lift: LiftFn) -> "Lifting":
        self._lifts[variable] = lift
        return self

    def get(self, variable: str) -> Optional[LiftFn]:
        """The lift for ``variable``, or ``None`` for the implicit ``1``."""
        return self._lifts.get(variable)

    def __contains__(self, variable: str) -> bool:
        return variable in self._lifts

    def table(self) -> Mapping[str, LiftFn]:
        """The explicit entries (used by ``Relation.marginalize``)."""
        return self._lifts

    def restricted(self, variables: Iterable[str]) -> Dict[str, LiftFn]:
        """Entries for the given variables only (skipping implicit ones)."""
        return {v: self._lifts[v] for v in variables if v in self._lifts}
