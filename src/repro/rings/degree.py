"""The degree-indexed ring: SQL-OPT's explicit encoding of cofactor payloads.

SQL-OPT (Section 7) arranges the quadratically many regression aggregates
into a single aggregate column indexed by the degree of each query variable.
Algebraically this is the truncated polynomial ring
``ℝ[x₁..x_m] / ⟨monomials of degree ≥ 3⟩`` — the same quotient the
degree-m matrix ring of Definition 6.2 implements with dense vectors and
matrices.  Here the payload is a sparse dict from monomials to floats:

* ``()``        → the count aggregate,
* ``(i,)``      → SUM(Xᵢ),
* ``(i, j)``    → SUM(Xᵢ·Xⱼ)  (indices sorted, i ≤ j).

Keeping both encodings lets the benchmarks reproduce the paper's F-IVM vs
SQL-OPT comparison: identical view trees and maintenance strategy, different
payload representation costs.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.rings.base import Ring

__all__ = ["DegreeRing"]

Monomial = Tuple[int, ...]
Poly = Dict[Monomial, float]


class DegreeRing(Ring):
    """Sparse truncated polynomials of total degree ≤ 2 over m variables."""

    def __init__(self, degree: int, tolerance: float = 1e-7):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.tolerance = tolerance
        self.name = f"degree[{degree}]"
        self._zero: Poly = {}
        self._one: Poly = {(): 1.0}

    @property
    def zero(self) -> Poly:
        return self._zero

    @property
    def one(self) -> Poly:
        return self._one

    def add(self, a: Poly, b: Poly) -> Poly:
        out = dict(a)
        for monomial, coeff in b.items():
            merged = out.get(monomial, 0.0) + coeff
            if abs(merged) <= self.tolerance:
                out.pop(monomial, None)
            else:
                out[monomial] = merged
        return out

    def mul(self, a: Poly, b: Poly) -> Poly:
        out: Poly = {}
        for m1, c1 in a.items():
            for m2, c2 in b.items():
                if len(m1) + len(m2) > 2:
                    continue  # quotient: monomials of degree ≥ 3 vanish
                monomial = tuple(sorted(m1 + m2))
                merged = out.get(monomial, 0.0) + c1 * c2
                if abs(merged) <= self.tolerance:
                    out.pop(monomial, None)
                else:
                    out[monomial] = merged
        return out

    def neg(self, a: Poly) -> Poly:
        return {monomial: -coeff for monomial, coeff in a.items()}

    def eq(self, a: Poly, b: Poly) -> bool:
        for monomial in set(a) | set(b):
            if abs(a.get(monomial, 0.0) - b.get(monomial, 0.0)) > self.tolerance:
                return False
        return True

    def is_zero(self, a: Poly) -> bool:
        return all(abs(c) <= self.tolerance for c in a.values())

    def sum(self, items) -> Poly:
        """Stacked sum: one shared coefficient accumulator for the batch.

        Bit-for-bit the base class's pairwise :meth:`add` fold — including
        the per-step tolerance truncation, so sub-tolerance contributions
        are dropped at exactly the same points — but a batch of n
        polynomials costs one dict-merge pass instead of n-1 intermediate
        dict copies: the degree-ring analogue of the cofactor ring's
        vectorized sum, feeding the deferred per-key accumulation of the
        compiled triggers.
        """
        out: Poly = {}
        get = out.get
        tolerance = self.tolerance
        for poly in items:
            for monomial, coeff in poly.items():
                merged = get(monomial, 0.0) + coeff
                if abs(merged) <= tolerance:
                    out.pop(monomial, None)
                else:
                    out[monomial] = merged
        return out

    def from_int(self, n: int) -> Poly:
        return {(): float(n)} if n else {}

    def lift(self, index: int) -> Callable[[object], Poly]:
        """Lifting for variable ``index``: ``x ↦ 1 + x·xᵢ + x²·xᵢ²``."""
        if not 0 <= index < self.degree:
            raise ValueError(f"variable index {index} out of range")

        def _lift(value: object) -> Poly:
            x = float(value)  # type: ignore[arg-type]
            return {(): 1.0, (index,): x, (index, index): x * x}

        return _lift
