"""The degree-indexed ring: SQL-OPT's explicit encoding of cofactor payloads.

SQL-OPT (Section 7) arranges the quadratically many regression aggregates
into a single aggregate column indexed by the degree of each query variable.
Algebraically this is the truncated polynomial ring
``ℝ[x₁..x_m] / ⟨monomials of degree ≥ 3⟩`` — the same quotient the
degree-m matrix ring of Definition 6.2 implements with dense vectors and
matrices.  Here the payload is a sparse dict from monomials to floats:

* ``()``        → the count aggregate,
* ``(i,)``      → SUM(Xᵢ),
* ``(i, j)``    → SUM(Xᵢ·Xⱼ)  (indices sorted, i ≤ j).

Keeping both encodings lets the benchmarks reproduce the paper's F-IVM vs
SQL-OPT comparison: identical view trees and maintenance strategy, different
payload representation costs.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.rings.base import Ring

__all__ = ["DegreeRing", "DegreeKernelOps"]

Monomial = Tuple[int, ...]
Poly = Dict[Monomial, float]


class DegreeKernelOps:
    """Stacked-array hooks for :class:`DegreeRing` payload columns.

    A column of n sparse polynomials packs into one dense ``(n, M)``
    coefficient matrix over the column's monomial *vocabulary* (the sorted
    union of monomials present) — the layout, in the sense of the packed
    protocol.  Ring operations become array arithmetic:

    * addition is matrix addition after adapting both operands onto the
      union vocabulary,
    * the truncated product is one ``(n, P)·(P, M_out)`` matmul against a
      memoized 0/1 scatter matrix enumerating all monomial pairs of total
      degree ≤ 2, and
    * the grouped ``Ring.sum`` is one ``np.add.at`` over group ids.

    Truncation semantics: the dict payloads drop sub-tolerance coefficients
    *per step*; the packed pipeline keeps full coefficients in the arrays
    and applies the tolerance once at :meth:`unpack` / :meth:`zero_mask`.
    On exactly-cancelling (integer-valued) data the results coincide; on
    general floats they agree within the ring's ``eq`` tolerance.
    """

    __slots__ = ("tolerance", "_adapt_cache", "_mul_cache")

    def __init__(self, ring: "DegreeRing"):
        self.tolerance = ring.tolerance
        self._adapt_cache: Dict[tuple, tuple] = {}
        self._mul_cache: Dict[tuple, tuple] = {}

    # -- packing --------------------------------------------------------

    def pack(self, column, n):
        vocab_set = set()
        for poly in column:
            vocab_set.update(poly)
        vocab = tuple(sorted(vocab_set))
        index = {monomial: j for j, monomial in enumerate(vocab)}
        mat = np.zeros((n, len(vocab)), dtype=np.float64)
        for i, poly in enumerate(column):
            for monomial, coeff in poly.items():
                mat[i, index[monomial]] = coeff
        return (mat, vocab)

    def payload_layout(self, payload):
        return tuple(sorted(payload))

    def pack_lift(self, lift_fn, values, n):
        """Pack a lifted column straight from the raw values:
        ``x ↦ 1 + x·xⱼ + x²·xⱼ²`` is the dense ``(1, x, x²)`` row on the
        vocabulary ``((), (j,), (j, j))``.  ``None`` for lift functions
        this ring did not produce."""
        tag = getattr(lift_fn, "_kernel_lift", None)
        if tag is None or tag[0] != "degree":
            return None
        j = tag[1]
        x = np.fromiter((float(v) for v in values), dtype=np.float64, count=n)
        mat = np.empty((n, 3), dtype=np.float64)
        mat[:, 0] = 1.0
        mat[:, 1] = x
        mat[:, 2] = x * x
        return (mat, ((), (j,), (j, j)))

    def unpack(self, packed):
        mat, vocab = packed
        tolerance = self.tolerance
        out = []
        for row in mat.tolist():
            out.append(
                {
                    monomial: coeff
                    for monomial, coeff in zip(vocab, row)
                    if abs(coeff) > tolerance
                }
            )
        return out

    # -- arithmetic -----------------------------------------------------

    def _adapt_map(self, vocab, union):
        """Column positions of ``vocab`` inside ``union`` (memoized)."""
        key = (vocab, union)
        hit = self._adapt_cache.get(key)
        if hit is None:
            where = {monomial: j for j, monomial in enumerate(union)}
            hit = np.array([where[m] for m in vocab], dtype=np.intp)
            self._adapt_cache[key] = hit
        return hit

    def _adapt(self, packed, union):
        mat, vocab = packed
        if vocab == union:
            return mat
        out = np.zeros((mat.shape[0], len(union)), dtype=np.float64)
        if vocab:
            out[:, self._adapt_map(vocab, union)] = mat
        return out

    def _union(self, va, vb):
        if va == vb:
            return va
        return tuple(sorted(set(va) | set(vb)))

    def identity(self, n):
        return (np.ones((n, 1), dtype=np.float64), ((),))

    def add_packed(self, a, b):
        union = self._union(a[1], b[1])
        return (self._adapt(a, union) + self._adapt(b, union), union)

    def neg_packed(self, a):
        return (-a[0], a[1])

    def mul_packed(self, a, b, n):
        """Truncated polynomial product: one matmul per column pair."""
        mat_a, va = a
        mat_b, vb = b
        key = (va, vb)
        hit = self._mul_cache.get(key)
        if hit is None:
            pairs = []
            out_vocab_set = set()
            for ia, ma in enumerate(va):
                for ib, mb in enumerate(vb):
                    if len(ma) + len(mb) > 2:
                        continue  # quotient: monomials of degree ≥ 3 vanish
                    monomial = tuple(sorted(ma + mb))
                    pairs.append((ia, ib, monomial))
                    out_vocab_set.add(monomial)
            out_vocab = tuple(sorted(out_vocab_set))
            where = {monomial: j for j, monomial in enumerate(out_vocab)}
            scatter = np.zeros((len(pairs), len(out_vocab)), dtype=np.float64)
            ia_arr = np.array([p[0] for p in pairs], dtype=np.intp)
            ib_arr = np.array([p[1] for p in pairs], dtype=np.intp)
            for row, (_, _, monomial) in enumerate(pairs):
                scatter[row, where[monomial]] = 1.0
            hit = (out_vocab, ia_arr, ib_arr, scatter)
            self._mul_cache[key] = hit
        out_vocab, ia_arr, ib_arr, scatter = hit
        if not out_vocab:
            return (np.zeros((n, 0), dtype=np.float64), out_vocab)
        prod = mat_a[:, ia_arr] * mat_b[:, ib_arr]
        return (prod @ scatter, out_vocab)

    def reduce(self, packed, group_ids, n_groups):
        mat, vocab = packed
        out = np.zeros((n_groups, len(vocab)), dtype=np.float64)
        np.add.at(out, group_ids, mat)
        return (out, vocab)

    def zero_mask(self, packed):
        mat, vocab = packed
        if not vocab:
            return np.ones(mat.shape[0], dtype=bool)
        return (np.abs(mat) <= self.tolerance).all(axis=1)

    # -- store hooks ----------------------------------------------------

    def alloc(self, cap, layout=()):
        return (np.zeros((cap, len(layout)), dtype=np.float64), tuple(layout))

    def grow(self, block, used, cap):
        mat, vocab = block
        out = np.zeros((cap, len(vocab)), dtype=np.float64)
        out[:used] = mat[:used]
        return (out, vocab)

    def take(self, block, rows):
        mat, vocab = block
        return (mat[rows], vocab)

    def _unify_block(self, block, packed):
        """Widen ``block`` and/or adapt ``packed`` onto a shared vocab."""
        mat, vocab = block
        union = self._union(vocab, packed[1])
        if union != vocab:
            widened = np.zeros((mat.shape[0], len(union)), dtype=np.float64)
            if vocab:
                widened[:, self._adapt_map(vocab, union)] = mat
            block = (widened, union)
        return block, self._adapt(packed, union)

    def put(self, block, rows, packed):
        block, values = self._unify_block(block, packed)
        block[0][rows] = values
        return block

    def add_at(self, block, rows, packed):
        block, values = self._unify_block(block, packed)
        np.add.at(block[0], rows, values)
        return block

    def zero_rows(self, block, rows):
        block[0][rows] = 0.0
        return block


class DegreeRing(Ring):
    """Sparse truncated polynomials of total degree ≤ 2 over m variables."""

    def __init__(self, degree: int, tolerance: float = 1e-7):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.tolerance = tolerance
        self.name = f"degree[{degree}]"
        self._zero: Poly = {}
        self._one: Poly = {(): 1.0}

    @property
    def zero(self) -> Poly:
        return self._zero

    @property
    def one(self) -> Poly:
        return self._one

    def add(self, a: Poly, b: Poly) -> Poly:
        out = dict(a)
        for monomial, coeff in b.items():
            merged = out.get(monomial, 0.0) + coeff
            if abs(merged) <= self.tolerance:
                out.pop(monomial, None)
            else:
                out[monomial] = merged
        return out

    def mul(self, a: Poly, b: Poly) -> Poly:
        out: Poly = {}
        for m1, c1 in a.items():
            for m2, c2 in b.items():
                if len(m1) + len(m2) > 2:
                    continue  # quotient: monomials of degree ≥ 3 vanish
                monomial = tuple(sorted(m1 + m2))
                merged = out.get(monomial, 0.0) + c1 * c2
                if abs(merged) <= self.tolerance:
                    out.pop(monomial, None)
                else:
                    out[monomial] = merged
        return out

    def neg(self, a: Poly) -> Poly:
        return {monomial: -coeff for monomial, coeff in a.items()}

    def eq(self, a: Poly, b: Poly) -> bool:
        for monomial in set(a) | set(b):
            if abs(a.get(monomial, 0.0) - b.get(monomial, 0.0)) > self.tolerance:
                return False
        return True

    def is_zero(self, a: Poly) -> bool:
        return all(abs(c) <= self.tolerance for c in a.values())

    def sum(self, items) -> Poly:
        """Stacked sum: one shared coefficient accumulator for the batch.

        Bit-for-bit the base class's pairwise :meth:`add` fold — including
        the per-step tolerance truncation, so sub-tolerance contributions
        are dropped at exactly the same points — but a batch of n
        polynomials costs one dict-merge pass instead of n-1 intermediate
        dict copies: the degree-ring analogue of the cofactor ring's
        vectorized sum, feeding the deferred per-key accumulation of the
        compiled triggers.
        """
        out: Poly = {}
        get = out.get
        tolerance = self.tolerance
        for poly in items:
            for monomial, coeff in poly.items():
                merged = get(monomial, 0.0) + coeff
                if abs(merged) <= tolerance:
                    out.pop(monomial, None)
                else:
                    out[monomial] = merged
        return out

    def from_int(self, n: int) -> Poly:
        return {(): float(n)} if n else {}

    def lift(self, index: int) -> Callable[[object], Poly]:
        """Lifting for variable ``index``: ``x ↦ 1 + x·xᵢ + x²·xᵢ²``."""
        if not 0 <= index < self.degree:
            raise ValueError(f"variable index {index} out of range")

        def _lift(value: object) -> Poly:
            x = float(value)  # type: ignore[arg-type]
            return {(): 1.0, (index,): x, (index, index): x * x}

        #: Tag for the kernel backend: a lifted column packs directly from
        #: the raw values — see :meth:`DegreeKernelOps.pack_lift`.
        _lift._kernel_lift = ("degree", index)
        return _lift

    def kernel_ops(self):
        ops = getattr(self, "_kernel_ops", None)
        if ops is None:
            ops = DegreeKernelOps(self)
            self._kernel_ops = ops
        return ops
