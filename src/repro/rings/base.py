"""Ring and semiring abstractions for view payloads.

F-IVM (Section 2 of the paper) models relations as functions from keys to
*payloads*, where payloads are elements of a ring ``(D, +, *, 0, 1)``.  The
maintenance machinery is generic in the ring: swapping the ring (and the
lifting functions) retargets the same view trees from COUNT/SUM queries to
gradient computation or factorized query evaluation.

Payload values themselves are plain Python objects (ints, floats, numpy-backed
triples, nested relations); a :class:`Ring` instance supplies the operations.
This keeps the common scalar path free of wrapper overhead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

__all__ = ["Ring", "RingElement", "check_ring_axioms"]

RingElement = Any


class Ring(ABC):
    """A ring ``(D, +, *, 0, 1)`` over payload values.

    Subclasses provide the two binary operations, the identities, and the
    additive inverse.  Semirings (no additive inverse) set
    ``has_additive_inverse = False`` and raise on :meth:`neg`; they support
    static evaluation but not deletions.
    """

    #: Human-readable name used in reprs and error messages.
    name: str = "ring"

    #: Whether :meth:`neg` is available (required for deletions / IVM).
    has_additive_inverse: bool = True

    #: Whether ``a * b == b * a`` holds; matrix rings are non-commutative.
    is_commutative: bool = True

    @property
    @abstractmethod
    def zero(self) -> RingElement:
        """The additive identity ``0``."""

    @property
    @abstractmethod
    def one(self) -> RingElement:
        """The multiplicative identity ``1``."""

    @abstractmethod
    def add(self, a: RingElement, b: RingElement) -> RingElement:
        """Return ``a + b``."""

    @abstractmethod
    def mul(self, a: RingElement, b: RingElement) -> RingElement:
        """Return ``a * b``."""

    def neg(self, a: RingElement) -> RingElement:
        """Return the additive inverse ``-a``."""
        raise NotImplementedError(f"{self.name} has no additive inverse")

    def sub(self, a: RingElement, b: RingElement) -> RingElement:
        """Return ``a - b`` (``a + (-b)``)."""
        return self.add(a, self.neg(b))

    def eq(self, a: RingElement, b: RingElement) -> bool:
        """Ring-aware equality (overridden for float-backed rings)."""
        return a == b

    def is_zero(self, a: RingElement) -> bool:
        """Whether ``a`` equals the additive identity.

        Relations eagerly drop keys whose payload is zero, so this test
        defines relation membership (``t in R`` iff ``R[t] != 0``).
        """
        return self.eq(a, self.zero)

    def is_one(self, a: RingElement) -> bool:
        """Whether ``a`` equals the multiplicative identity."""
        return self.eq(a, self.one)

    def sum(self, items: Iterable[RingElement]) -> RingElement:
        """Sum an iterable of ring values (``0`` for the empty iterable)."""
        total = self.zero
        for item in items:
            total = self.add(total, item)
        return total

    def product(self, items: Iterable[RingElement]) -> RingElement:
        """Multiply an iterable of ring values (``1`` for the empty one)."""
        result = self.one
        for item in items:
            result = self.mul(result, item)
        return result

    def from_int(self, n: int) -> RingElement:
        """Embed the integer ``n`` as ``n * 1`` (the canonical ℤ image).

        Used to turn tuple multiplicities (inserts ``+1`` / deletes ``-1``)
        into payloads of the target ring.
        """
        if n == 0:
            return self.zero
        if n < 0:
            return self.neg(self.from_int(-n))
        result = self.zero
        for _ in range(n):
            result = self.add(result, self.one)
        return result

    def scale(self, n: int, a: RingElement) -> RingElement:
        """Return ``a`` added to itself ``n`` times (``n`` may be negative)."""
        return self.mul(self.from_int(n), a)

    def kernel_ops(self):
        """Array-execution hooks for the NumPy kernel backend and the
        columnar relation store.

        Rings that can pack payload columns into arrays return an object
        with the packed-column protocol shared by
        :mod:`repro.core.kernels` and :mod:`repro.data.columnar`:

        * ``pack(column, n)`` / ``unpack(packed)`` — payload list ↔
          packed column (``pack`` may return ``None`` for layout-mixed
          columns, e.g. cofactor columns with differing supports, which
          sends that batch down the scalar fallback);
        * ``payload_layout(payload)`` — the hashable layout key a payload
          packs under (used to group a mixed column into packable runs);
        * ``mul_packed(a, b, n)`` / ``add_packed`` / ``neg_packed`` /
          ``identity(n)`` — vectorized ring arithmetic on packed columns;
        * ``reduce(packed, group_ids, n_groups)`` — the grouped
          ``Ring.sum`` fold (group ids assigned first-seen);
        * ``zero_mask(packed)`` — per-row ``is_zero`` as one bool array
          (tolerance-aware for float-backed rings);
        * store hooks ``alloc(cap, layout)`` / ``grow(block, used,
          cap)`` / ``take(block, rows)`` / ``put`` / ``add_at`` /
          ``zero_rows`` — preallocated payload blocks with in-place row
          writes and duplicate-safe scatter-adds, the backing storage of
          :class:`repro.data.columnar.ColumnarRelation`.

        All of it is semantically equal to the scalar ``mul``/``sum``
        fold.  ``None`` (the default) means the kernel backend falls back
        to generated source for nodes over this ring and columnar
        relations keep payloads as an object column.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def check_ring_axioms(ring: Ring, elements: list) -> None:
    """Assert the ring axioms of Definition A.1 on the given sample values.

    Raises ``AssertionError`` naming the violated axiom.  Used by the test
    suite (including hypothesis-generated samples) for every concrete ring.
    """
    zero, one = ring.zero, ring.one
    for a in elements:
        assert ring.eq(ring.add(zero, a), a), "0 + a != a"
        assert ring.eq(ring.add(a, zero), a), "a + 0 != a"
        assert ring.eq(ring.mul(one, a), a), "1 * a != a"
        assert ring.eq(ring.mul(a, one), a), "a * 1 != a"
        if ring.has_additive_inverse:
            assert ring.is_zero(ring.add(a, ring.neg(a))), "a + (-a) != 0"
            assert ring.is_zero(ring.add(ring.neg(a), a)), "(-a) + a != 0"
    for a in elements:
        for b in elements:
            assert ring.eq(ring.add(a, b), ring.add(b, a)), "a + b != b + a"
            if ring.is_commutative:
                assert ring.eq(ring.mul(a, b), ring.mul(b, a)), "a*b != b*a"
    for a in elements:
        for b in elements:
            for c in elements:
                assert ring.eq(
                    ring.add(ring.add(a, b), c), ring.add(a, ring.add(b, c))
                ), "(a+b)+c != a+(b+c)"
                assert ring.eq(
                    ring.mul(ring.mul(a, b), c), ring.mul(a, ring.mul(b, c))
                ), "(a*b)*c != a*(b*c)"
                assert ring.eq(
                    ring.mul(a, ring.add(b, c)),
                    ring.add(ring.mul(a, b), ring.mul(a, c)),
                ), "a*(b+c) != a*b + a*c"
                assert ring.eq(
                    ring.mul(ring.add(a, b), c),
                    ring.add(ring.mul(a, c), ring.mul(b, c)),
                ), "(a+b)*c != a*c + b*c"
