"""The asyncio request-serving loop over a maintained engine.

:mod:`repro.core.serving` gives point lookups a synchronous read path
(:class:`ViewClient`); this module puts a request loop around it shaped
like real traffic: **many concurrent reader tasks, one writer task**.
Readers call :meth:`ViewServer.lookup` / :meth:`ViewServer.lookup_many`;
writers submit update groups with :meth:`ViewServer.apply`, which
enqueues them for the single writer task draining the queue through
:meth:`FIVMEngine.apply_batch`.

Consistency is an **epoch handoff** over a writer-preference
reader/writer lock (:class:`EpochLock`): the writer applies each drained
group of batches while holding the write side, then bumps the epoch on
release.  A reader holds the read side across *all* the lookups of one
request, so every value it reads comes from the same epoch — it can
never observe a half-applied batch, even when its own cold keys trigger
upqueries that recompute through views the batch would have touched.
Because the event loop is cooperative, the engine itself never runs
re-entrantly; the lock exists for *multi-lookup* requests and for the
epoch bookkeeping the serving tests assert on.

The writer prefers pending writers over new readers (readers queue
behind a waiting writer), so a steady read stream cannot starve the
write path — the freshness the north star's "heavy traffic" axis needs.

Degradation is graceful rather than silent: the write queue can be
bounded (``max_queue``) with a ``"wait"`` (backpressure) or ``"shed"``
(:class:`Backpressure` raised to the submitter) overflow policy;
:meth:`ViewServer.apply` takes a per-request timeout with
**commit-anyway** semantics (the group still commits — only the wait is
abandoned, exactly like a cancelled submitter); and a writer task that
dies is contained: its real exception fails the in-flight and queued
futures, later :meth:`~ViewServer.apply` calls fail fast with
:class:`WriterCrashed`, and :meth:`ViewServer.stop` still returns (and
is idempotent) instead of joining a queue nobody will drain.

The server also fronts a :class:`~repro.core.multiview.MultiViewEngine`
(many registered queries, shared sub-views, target-lag refresh): the
writer drains ``(relation, counts)`` groups through the same
``apply_batch`` entry point, reads go through the engine's own client,
:meth:`ViewServer.register` / :meth:`ViewServer.deregister` add and drop
queries under the write lock, :meth:`ViewServer.lookup_fresh` returns a
payload together with its freshness metadata, and an optional
``tick_interval`` runs the engine's lag scheduler even when no writes
arrive (a lagged view must not stay stale just because the stream went
quiet).
"""

from __future__ import annotations

import asyncio
import socket
from contextlib import asynccontextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.serving import ViewClient

__all__ = [
    "Backpressure",
    "EpochLock",
    "ShardHost",
    "ViewServer",
    "WriterCrashed",
]


class ShardHost:
    """Serve one shard engine over TCP — the remote end of
    ``ShardedFIVMEngine(executor="socket", shard_addresses=...)``.

    Binds a listener (``port=0`` picks a free port; read it back from
    :attr:`address`) and, in :meth:`serve`, accepts coordinator sessions
    one at a time, each served by the shard worker loop over
    length-prefixed pickle frames (:class:`repro.core.sharded.FrameConn`)
    — the exact protocol the process executor speaks over pipes.  Every
    session builds a fresh engine via ``factory`` and is re-seeded by the
    coordinator with its snapshot + journal-tail handoff, which is what
    makes a plain reconnect a full failover.  Run one host per shard, on
    any machine the coordinator can reach::

        host = ShardHost(lambda: FIVMEngine(query))   # on the shard box
        print(host.address)                            # ("0.0.0.0", 7421)
        host.serve()                                   # blocks

    ``faults`` arms a :class:`repro.core.faults.FaultPlan` for the first
    session only (recovered sessions model the healed worker and run
    fault-free), mirroring the forked executors' test surface.  The host
    itself is deliberately dumb — no engine state outlives a session —
    so give it OS-level supervision (systemd, a supervisor tree) for
    crash restarts; coordinator-side journaling makes the restart safe.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        host: str = "127.0.0.1",
        port: int = 0,
        faults=None,
    ):
        self._factory = factory
        self._faults = faults
        self._listener = socket.create_server((host, port))

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — hand this to the coordinator."""
        return self._listener.getsockname()[:2]

    def serve(self, sessions: Optional[int] = None) -> None:
        """Accept and serve coordinator sessions (blocks).

        ``sessions`` bounds how many sessions to serve — handy in tests;
        ``None`` serves until :meth:`close` (or process death).
        """
        from repro.core.sharded import _host_loop

        _host_loop(self._listener, self._factory, self._faults, sessions)

    def close(self) -> None:
        """Close the listener; a blocked :meth:`serve` returns."""
        self._listener.close()

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Backpressure(RuntimeError):
    """Raised by :meth:`ViewServer.apply` under the ``"shed"`` overflow
    policy when the bounded write queue is full."""


class WriterCrashed(RuntimeError):
    """Raised by :meth:`ViewServer.apply` once the writer task has died;
    ``__cause__`` carries the writer's real exception."""


class EpochLock:
    """Writer-preference asyncio reader/writer lock with an epoch counter.

    Any number of readers share the lock; a writer holds it exclusively.
    New readers queue behind a *waiting* writer (writer preference), and
    :attr:`epoch` increments on every write release — the handoff point
    readers use to tell batches apart.
    """

    def __init__(self) -> None:
        #: Completed write epochs. A reader holding the read side sees a
        #: frozen value; it changes only at write release.
        self.epoch = 0
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def read(self):
        """Shared acquisition; yields the epoch the read runs in."""
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
            epoch = self.epoch
        try:
            yield epoch
        finally:
            async with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        """Exclusive acquisition; bumps :attr:`epoch` on release."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
                if self._writers_waiting == 0:
                    # A waiter leaving by cancellation must wake the
                    # readers its writer preference was parking; on the
                    # success path the wakeup is spurious but harmless
                    # (we set _writer before releasing the condition).
                    self._cond.notify_all()
            self._writer = True
        try:
            yield self.epoch
        finally:
            async with self._cond:
                self._writer = False
                self.epoch += 1
                self._cond.notify_all()


class ViewServer:
    """Many concurrent readers, one writer, over one maintained engine.

    Start the writer task with :meth:`start` (or use the server as an
    async context manager); submit update groups with :meth:`apply`;
    read with :meth:`lookup` / :meth:`lookup_many`.  All reads of one
    ``lookup_many`` call happen inside a single read-lock hold, so they
    observe one epoch — the no-torn-reads guarantee the serving tests
    lock down.
    """

    def __init__(
        self,
        engine,
        max_drain: int = 16,
        max_queue: Optional[int] = None,
        overflow: str = "wait",
        apply_timeout: Optional[float] = None,
        faults=None,
        tick_interval: Optional[float] = None,
    ):
        self.engine = engine
        # A multi-view engine brings its own read front door (same
        # lookup/lookup_many/stats surface); single engines get the
        # classic point-lookup client.
        self.client = (
            engine.client() if hasattr(engine, "client")
            else ViewClient(engine)
        )
        #: Period (seconds) of the background scheduler tick for engines
        #: exposing one (:class:`~repro.core.multiview.MultiViewEngine`);
        #: ``None`` relies on write-path ticks alone.
        self.tick_interval = tick_interval
        self._tick_task: Optional[asyncio.Task] = None
        self.lock = EpochLock()
        #: Update groups the writer drains per write-lock hold (they all
        #: commit in one epoch; queued submitters resolve together).
        self.max_drain = max(1, max_drain)
        #: Bound on queued (unstarted) update groups; ``None`` means
        #: unbounded — the pre-backpressure behaviour.
        self.max_queue = max_queue
        if overflow not in ("wait", "shed"):
            raise ValueError("overflow must be 'wait' or 'shed'")
        #: What a full queue does to a submitter: ``"wait"`` blocks it
        #: (backpressure), ``"shed"`` raises :class:`Backpressure`.
        self.overflow = overflow
        #: Default per-request timeout for :meth:`apply` (seconds;
        #: ``None`` waits forever).  Commit-anyway: a timed-out group
        #: still commits — only the caller's wait is abandoned.
        self.apply_timeout = apply_timeout
        #: Optional :class:`repro.core.faults.FaultPlan`; the writer task
        #: announces the ``writer.loop`` site once per drained group list
        #: (the crash containment tests plant ``InjectedCrash`` there).
        self._faults = faults
        self._queue: Optional[asyncio.Queue] = None
        self._writer_task: Optional[asyncio.Task] = None
        #: The exception that killed the writer task, if any — the
        #: containment flag every write-path entry point checks.
        self._writer_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ViewServer":
        """Spawn the single writer task (idempotent), plus the periodic
        scheduler tick when ``tick_interval`` is set and the engine has a
        ``tick`` (lagged views refresh on schedule, not only on writes)."""
        if self._writer_task is None:
            self._queue = asyncio.Queue(maxsize=self.max_queue or 0)
            self._writer_error = None
            self._writer_task = asyncio.create_task(self._writer_loop())
        if (
            self._tick_task is None
            and self.tick_interval is not None
            and hasattr(self.engine, "tick")
        ):
            self._tick_task = asyncio.create_task(self._tick_loop())
        return self

    async def stop(self) -> None:
        """Wait out queued writes, then cancel the writer task.

        Idempotent, and safe against a dead writer: if the writer task
        crashed, queued groups will never be ``task_done``'d, so instead
        of joining the queue forever this fails their futures with the
        writer's real exception and returns.
        """
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        task, queue = self._writer_task, self._queue
        if task is None:
            return
        self._writer_task = None
        if not task.done():
            join_task = asyncio.ensure_future(queue.join())
            # The writer finishing first (it can only finish by dying)
            # unblocks this wait; a healthy writer drains the queue and
            # join() wins.
            await asyncio.wait(
                {join_task, task}, return_when=asyncio.FIRST_COMPLETED
            )
            if not join_task.done():
                join_task.cancel()
                try:
                    await join_task
                except asyncio.CancelledError:
                    pass
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        except BaseException:
            pass  # the writer's own crash, already recorded
        if self._writer_error is not None:
            self._drain_failed(self._writer_error)
        self._queue = None

    async def __aenter__(self) -> "ViewServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the read path --------------------------------------------------

    @property
    def epoch(self) -> int:
        """Completed write epochs (reads return the epoch they ran in)."""
        return self.lock.epoch

    async def lookup(self, view_name: str, key: Iterable):
        """One point lookup under the read lock; returns the payload."""
        async with self.lock.read():
            return self.client.lookup(view_name, key)

    async def lookup_many(
        self, view_name: str, keys: Sequence[Iterable]
    ) -> Tuple[List, int]:
        """Point lookups under ONE read-lock hold.

        Returns ``(payloads, epoch)``: every payload comes from the same
        epoch — a concurrently submitted batch is either fully reflected
        in all of them or in none.
        """
        async with self.lock.read() as epoch:
            return self.client.lookup_many(view_name, keys), epoch

    def stats(self, view_name: str) -> Dict[str, int]:
        """Serving counters for one partial view (see ``ViewClient``) —
        or, over a multi-view engine, that view's refresh counters and
        freshness snapshot."""
        return self.client.stats(view_name)

    async def lookup_fresh(self, view_name: str, key: Iterable):
        """One point lookup plus the freshness metadata of the state it
        read: ``(payload, freshness)``, both taken under one read-lock
        hold so they describe the same epoch.  The freshness dict is the
        engine's (:meth:`~repro.core.multiview.MultiViewEngine.freshness`
        for multi-view engines — target lag, pending deltas, staleness,
        last refresh); engines without freshness tracking report ``{}``
        (a single eager engine is always fresh at read time).
        """
        async with self.lock.read():
            payload = self.client.lookup(view_name, key)
            if hasattr(self.engine, "freshness"):
                return payload, self.engine.freshness(view_name)
            return payload, {}

    # -- multi-view registration ---------------------------------------

    async def register(self, query, *, target_lag: float = 0.0,
                       name: Optional[str] = None, order=None) -> str:
        """Register a query on a multi-view engine, under the write lock
        (registration may promote shared sub-views and rebuild their
        hosts, which must not interleave with reads).  Returns the view
        name; raises :class:`TypeError` over a single-query engine."""
        self._require_multiview("register")
        async with self.lock.write():
            return self.engine.register(
                query, order, target_lag=target_lag, name=name
            )

    async def deregister(self, view_name: str) -> None:
        """Drop a registered view (write-locked; shared sub-views losing
        their last subscriber are freed)."""
        self._require_multiview("deregister")
        async with self.lock.write():
            self.engine.deregister(view_name)

    def set_target_lag(self, view_name: str, target_lag: float) -> None:
        """Change one view's lag budget (effective at the next tick)."""
        self._require_multiview("set_target_lag")
        self.engine.set_target_lag(view_name, target_lag)

    def _require_multiview(self, what: str) -> None:
        if not hasattr(self.engine, "register"):
            raise TypeError(
                f"ViewServer.{what} needs a MultiViewEngine; "
                f"this server fronts {type(self.engine).__name__}"
            )

    async def _tick_loop(self) -> None:
        """Run the engine's lag scheduler every ``tick_interval`` seconds
        under the write lock, so lagged views stay within their budgets
        even when no writes arrive to piggyback the tick on."""
        while True:
            await asyncio.sleep(self.tick_interval)
            async with self.lock.write():
                self.engine.tick()

    # -- the write path -------------------------------------------------

    async def apply(self, deltas: Iterable, timeout: Optional[float] = None):
        """Submit one update group; resolves with its root delta once the
        writer has committed it (and its epoch has been published).

        Degradation semantics:

        * a dead writer raises :class:`WriterCrashed` immediately (its
          real exception as ``__cause__``) — clients never hang on a
          queue nobody drains;
        * a full bounded queue blocks (``overflow="wait"``) or raises
          :class:`Backpressure` (``overflow="shed"``);
        * ``timeout`` (default :attr:`apply_timeout`) bounds only the
          *wait*: on expiry ``TimeoutError`` is raised but the group
          still commits and its epoch is still published — the same
          **commit-anyway** contract as a submitter whose task is
          cancelled while its group is queued (the writer checks
          ``future.cancelled()`` only to skip delivering the result).
        """
        if self._writer_task is None:
            raise RuntimeError("ViewServer.start() has not been called")
        if self._writer_error is not None:
            raise self._writer_failure()
        items = list(deltas)
        if (
            self.overflow == "shed"
            and self.max_queue is not None
            and self._queue.full()
        ):
            raise Backpressure(
                f"write queue full ({self.max_queue} groups); update shed"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((items, future))
        if self._writer_error is not None and not future.done():
            # the writer died while this submitter awaited queue space
            self._drain_failed(self._writer_error)
        if timeout is None:
            timeout = self.apply_timeout
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # commit-anyway: the group stays queued and will commit;
            # retrieve its eventual outcome so it never warns unretrieved
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            raise

    def _writer_failure(self) -> WriterCrashed:
        exc = WriterCrashed(f"writer task died: {self._writer_error!r}")
        exc.__cause__ = self._writer_error
        return exc

    def _drain_failed(self, exc: BaseException) -> None:
        """Fail every queued group with the writer's real exception and
        mark it done, so ``queue.join()`` and submitters both unblock."""
        queue = self._queue
        if queue is None:
            return
        while True:
            try:
                _items, future = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if not future.done():
                future.set_exception(exc)
            queue.task_done()

    async def _writer_loop(self) -> None:
        queue = self._queue
        groups: List[tuple] = []
        try:
            while True:
                groups = [await queue.get()]
                while len(groups) < self.max_drain:
                    try:
                        groups.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                try:
                    if self._faults is not None:
                        self._faults.fire("writer.loop")
                    async with self.lock.write():
                        # apply_batch is synchronous: each group commits
                        # atomically with respect to the event loop, and the
                        # lock extends that atomicity over the whole drain.
                        for items, future in groups:
                            try:
                                result = self.engine.apply_batch(items)
                            except Exception as exc:  # engine rejected it
                                if not future.cancelled():
                                    future.set_exception(exc)
                            else:
                                if not future.cancelled():
                                    future.set_result(result)
                finally:
                    for _ in groups:
                        queue.task_done()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            # Writer-crash containment: record the exception, fail the
            # in-flight and queued futures with it, and die visibly —
            # apply() and stop() check _writer_error instead of hanging.
            self._writer_error = exc
            for _items, future in groups:
                if not future.done():
                    future.set_exception(exc)
            self._drain_failed(exc)
            raise
