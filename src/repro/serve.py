"""The asyncio request-serving loop over a maintained engine.

:mod:`repro.core.serving` gives point lookups a synchronous read path
(:class:`ViewClient`); this module puts a request loop around it shaped
like real traffic: **many concurrent reader tasks, one writer task**.
Readers call :meth:`ViewServer.lookup` / :meth:`ViewServer.lookup_many`;
writers submit update groups with :meth:`ViewServer.apply`, which
enqueues them for the single writer task draining the queue through
:meth:`FIVMEngine.apply_batch`.

Consistency is an **epoch handoff** over a writer-preference
reader/writer lock (:class:`EpochLock`): the writer applies each drained
group of batches while holding the write side, then bumps the epoch on
release.  A reader holds the read side across *all* the lookups of one
request, so every value it reads comes from the same epoch — it can
never observe a half-applied batch, even when its own cold keys trigger
upqueries that recompute through views the batch would have touched.
Because the event loop is cooperative, the engine itself never runs
re-entrantly; the lock exists for *multi-lookup* requests and for the
epoch bookkeeping the serving tests assert on.

The writer prefers pending writers over new readers (readers queue
behind a waiting writer), so a steady read stream cannot starve the
write path — the freshness the north star's "heavy traffic" axis needs.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.serving import ViewClient

__all__ = ["EpochLock", "ViewServer"]


class EpochLock:
    """Writer-preference asyncio reader/writer lock with an epoch counter.

    Any number of readers share the lock; a writer holds it exclusively.
    New readers queue behind a *waiting* writer (writer preference), and
    :attr:`epoch` increments on every write release — the handoff point
    readers use to tell batches apart.
    """

    def __init__(self) -> None:
        #: Completed write epochs. A reader holding the read side sees a
        #: frozen value; it changes only at write release.
        self.epoch = 0
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def read(self):
        """Shared acquisition; yields the epoch the read runs in."""
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
            epoch = self.epoch
        try:
            yield epoch
        finally:
            async with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        """Exclusive acquisition; bumps :attr:`epoch` on release."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield self.epoch
        finally:
            async with self._cond:
                self._writer = False
                self.epoch += 1
                self._cond.notify_all()


class ViewServer:
    """Many concurrent readers, one writer, over one maintained engine.

    Start the writer task with :meth:`start` (or use the server as an
    async context manager); submit update groups with :meth:`apply`;
    read with :meth:`lookup` / :meth:`lookup_many`.  All reads of one
    ``lookup_many`` call happen inside a single read-lock hold, so they
    observe one epoch — the no-torn-reads guarantee the serving tests
    lock down.
    """

    def __init__(self, engine, max_drain: int = 16):
        self.engine = engine
        self.client = ViewClient(engine)
        self.lock = EpochLock()
        #: Update groups the writer drains per write-lock hold (they all
        #: commit in one epoch; queued submitters resolve together).
        self.max_drain = max(1, max_drain)
        self._queue: Optional[asyncio.Queue] = None
        self._writer_task: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ViewServer":
        """Spawn the single writer task (idempotent)."""
        if self._writer_task is None:
            self._queue = asyncio.Queue()
            self._writer_task = asyncio.create_task(self._writer_loop())
        return self

    async def stop(self) -> None:
        """Wait out queued writes, then cancel the writer task."""
        if self._writer_task is None:
            return
        await self._queue.join()
        self._writer_task.cancel()
        try:
            await self._writer_task
        except asyncio.CancelledError:
            pass
        self._writer_task = None
        self._queue = None

    async def __aenter__(self) -> "ViewServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the read path --------------------------------------------------

    @property
    def epoch(self) -> int:
        """Completed write epochs (reads return the epoch they ran in)."""
        return self.lock.epoch

    async def lookup(self, view_name: str, key: Iterable):
        """One point lookup under the read lock; returns the payload."""
        async with self.lock.read():
            return self.client.lookup(view_name, key)

    async def lookup_many(
        self, view_name: str, keys: Sequence[Iterable]
    ) -> Tuple[List, int]:
        """Point lookups under ONE read-lock hold.

        Returns ``(payloads, epoch)``: every payload comes from the same
        epoch — a concurrently submitted batch is either fully reflected
        in all of them or in none.
        """
        async with self.lock.read() as epoch:
            return self.client.lookup_many(view_name, keys), epoch

    def stats(self, view_name: str) -> Dict[str, int]:
        """Serving counters for one partial view (see ``ViewClient``)."""
        return self.client.stats(view_name)

    # -- the write path -------------------------------------------------

    async def apply(self, deltas: Iterable):
        """Submit one update group; resolves with its root delta once the
        writer has committed it (and its epoch has been published)."""
        if self._writer_task is None:
            raise RuntimeError("ViewServer.start() has not been called")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((list(deltas), future))
        return await future

    async def _writer_loop(self) -> None:
        queue = self._queue
        while True:
            groups = [await queue.get()]
            while len(groups) < self.max_drain:
                try:
                    groups.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                async with self.lock.write():
                    # apply_batch is synchronous: each group commits
                    # atomically with respect to the event loop, and the
                    # lock extends that atomicity over the whole drain.
                    for items, future in groups:
                        try:
                            result = self.engine.apply_batch(items)
                        except Exception as exc:  # engine rejected the group
                            if not future.cancelled():
                                future.set_exception(exc)
                        else:
                            if not future.cancelled():
                                future.set_result(result)
            finally:
                for _ in groups:
                    queue.task_done()
