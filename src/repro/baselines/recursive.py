"""Fully recursive higher-order IVM — the DBToaster baseline (DBT, DBT-RING).

DBToaster [25] compiles one *materialization hierarchy per relation*: the
delta of a view for updates to R is a query over the remaining relations,
which is itself materialized and recursively maintained.  Two behaviours are
mirrored faithfully here:

* **Connected-component factoring**: a delta query binds the updated
  relation's variables, so the remaining relations decompose into connected
  components, each materialized as its own view (this is why DBT aggregates
  every Housing relation down to the join key).
* **View sharing only by exact identity**: views are memoized on (relation
  set, group-by schema); unlike F-IVM's single shared view tree, different
  hierarchies re-materialize overlapping joins, which is the space/time
  overhead the paper measures.

``DBT-RING`` is this class instantiated with a ring payload (e.g. the
degree-m matrix ring); plain ``DBT`` maintains scalar aggregates and is
modelled by :class:`ScalarAggregateBank`, which runs one maintenance
strategy per aggregate with no sharing.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.hypergraph import connected_components
from repro.core.query import Query
from repro.data.database import Database
from repro.data.relation import Relation
from repro.rings.lifting import Lifting

__all__ = ["RecursiveIVM", "ScalarAggregateBank"]

ViewKey = Tuple[FrozenSet[str], Tuple[str, ...]]


class _DeltaRule:
    """Precompiled delta evaluation for one (view, updated relation) pair."""

    __slots__ = ("components", "lift_vars", "group_by")

    def __init__(
        self,
        components: List[Tuple[ViewKey, Tuple[str, ...]]],
        lift_vars: Tuple[str, ...],
        group_by: Tuple[str, ...],
    ):
        self.components = components  # (child view key, probe attrs)
        self.lift_vars = lift_vars
        self.group_by = group_by


class RecursiveIVM:
    """One materialization hierarchy per updatable relation (DBToaster)."""

    def __init__(
        self,
        query: Query,
        updatable: Optional[Sequence[str]] = None,
        db: Optional[Database] = None,
    ):
        self.query = query
        self.updatable = (
            frozenset(updatable) if updatable is not None
            else frozenset(query.relations)
        )
        self._var_pos = {v: i for i, v in enumerate(query.variables)}
        self.views: Dict[ViewKey, Relation] = {}
        self._rules: Dict[Tuple[ViewKey, str], _DeltaRule] = {}
        #: Per relation: affected view keys in increasing relation-set size.
        self._affected: Dict[str, List[ViewKey]] = {r: [] for r in query.relations}
        self.top_key = self._materialize(
            frozenset(query.relations), self._canonical(query.free)
        )
        for rel in self._affected:
            self._affected[rel].sort(key=lambda key: len(key[0]))
        if db is not None:
            self.initialize(db)

    # ------------------------------------------------------------------

    def _canonical(self, attrs) -> Tuple[str, ...]:
        return tuple(sorted(attrs, key=lambda a: self._var_pos[a]))

    def _materialize(self, rels: FrozenSet[str], group_by: Tuple[str, ...]) -> ViewKey:
        key: ViewKey = (rels, group_by)
        if key in self.views:
            return key
        name = f"M[{'+'.join(sorted(rels))}|{','.join(group_by)}]"
        self.views[key] = Relation(name, group_by, self.query.ring)
        for rel in sorted(rels):
            if rel in self.updatable:
                self._affected[rel].append(key)
        if len(rels) == 1:
            return key
        for rel in sorted(rels & self.updatable):
            self._compile_rule(key, rel)
        return key

    def _compile_rule(self, key: ViewKey, rel: str) -> None:
        rels, group_by = key
        schema = set(self.query.schema_of(rel))
        rest = rels - {rel}
        # The update binds rel's variables; components are computed over the
        # residual hyperedges (DBToaster's conditional-independence factoring).
        reduced = [
            (other, tuple(set(self.query.schema_of(other)) - schema))
            for other in sorted(rest)
        ]
        components: List[Tuple[ViewKey, Tuple[str, ...]]] = []
        visible = set(schema)
        for component in connected_components(reduced):
            comp_rels = frozenset(component)
            comp_vars = set()
            for other in component:
                comp_vars |= set(self.query.schema_of(other))
            child_group = self._canonical(comp_vars & (schema | set(group_by)))
            child_key = self._materialize(comp_rels, child_group)
            probe = tuple(a for a in child_group if a in schema)
            components.append((child_key, probe))
            visible |= set(child_group)
            # Delta probes need an index on the shared attributes.
            if probe and probe != self.views[child_key].schema:
                self.views[child_key].register_index(probe)
        lifting = self.query.lifting
        lift_vars = self._canonical(
            v for v in visible if v not in set(group_by) and lifting.get(v) is not None
        )
        self._rules[(key, rel)] = _DeltaRule(components, lift_vars, group_by)

    # ------------------------------------------------------------------

    def initialize(self, db: Database) -> None:
        """Recompute every materialized view from a database snapshot."""
        for key in self.views:
            self.views[key].clear()
            self.views[key].absorb(self._evaluate(key, db))

    def _evaluate(self, key: ViewKey, db: Database) -> Relation:
        rels, group_by = key
        current: Optional[Relation] = None
        for rel in sorted(rels):
            contents = db.relation(rel)
            current = contents if current is None else current.join(contents)
        assert current is not None
        return current.group_by(group_by, self.query.lifting.table())

    def result(self) -> Relation:
        return self.views[self.top_key]

    def view_count(self) -> int:
        return len(self.views)

    def view_sizes(self) -> Dict[str, int]:
        return {view.name: len(view) for view in self.views.values()}

    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Maintain every view whose relation set contains the update."""
        rel = delta.name
        if rel not in self.updatable:
            raise KeyError(f"relation {rel!r} is not updatable")
        lifting_table = self.query.lifting.table()
        top_delta: Optional[Relation] = None
        # All deltas read only views over sets *excluding* rel, which this
        # update does not touch, so computation can precede absorption.
        deltas: List[Tuple[ViewKey, Relation]] = []
        for key in self._affected[rel]:
            rels, group_by = key
            if len(rels) == 1:
                change = delta.group_by(group_by, lifting_table)
            else:
                change = self._evaluate_delta(key, rel, delta)
            deltas.append((key, change))
            if key == self.top_key:
                top_delta = change
        for key, change in deltas:
            self.views[key].absorb(change)
        if top_delta is None:
            root = self.views[self.top_key]
            top_delta = Relation(root.name, root.schema, self.query.ring)
        return top_delta

    def _evaluate_delta(self, key: ViewKey, rel: str, delta: Relation) -> Relation:
        rule = self._rules[(key, rel)]
        ring = self.query.ring
        mul = ring.mul
        lifting = self.query.lifting
        schema = self.query.schema_of(rel)
        out = Relation(self.views[key].name, rule.group_by, ring)
        lifts = [(v, lifting.get(v)) for v in rule.lift_vars]
        for dkey, dpayload in delta.items():
            binding = dict(zip(schema, dkey))
            partials: List[Tuple[dict, object]] = [(binding, dpayload)]
            for child_key, probe in rule.components:
                child = self.views[child_key]
                extended: List[Tuple[dict, object]] = []
                for bnd, payload in partials:
                    subkey = tuple(bnd[a] for a in probe)
                    for tkey, tpayload in child.lookup(probe, subkey):
                        new_bnd = dict(bnd)
                        for attr, value in zip(child.schema, tkey):
                            new_bnd[attr] = value
                        extended.append((new_bnd, mul(payload, tpayload)))
                partials = extended
                if not partials:
                    break
            for bnd, payload in partials:
                for var, lift in lifts:
                    payload = mul(payload, lift(bnd[var]))
                out.add(tuple(bnd[g] for g in rule.group_by), payload)
        return out


class ScalarAggregateBank:
    """Plain DBT / scalar 1-IVM: one maintenance strategy per aggregate.

    Scalar-payload systems cannot share computation across the O(m²)
    regression aggregates, so each aggregate gets its own query (its own
    lifting functions) and its own full strategy instance — reproducing the
    paper's 995-views-for-990-aggregates blowup.
    """

    def __init__(
        self,
        make_strategy: Callable[[Query], object],
        base_query: Query,
        aggregates: Sequence[Tuple[str, Lifting]],
    ):
        self.strategies: List[object] = []
        self.names: List[str] = []
        for agg_name, lifting in aggregates:
            query = Query(
                f"{base_query.name}:{agg_name}",
                base_query.relations,
                base_query.free,
                ring=base_query.ring,
                lifting=lifting,
            )
            self.strategies.append(make_strategy(query))
            self.names.append(agg_name)

    def apply_update(self, delta: Relation) -> None:
        for strategy in self.strategies:
            strategy.apply_update(delta)

    def result(self) -> Dict[str, Relation]:
        return {
            name: strategy.result()
            for name, strategy in zip(self.names, self.strategies)
        }

    def view_count(self) -> int:
        total = 0
        for strategy in self.strategies:
            if hasattr(strategy, "view_count"):
                total += strategy.view_count()
            else:
                total += len(strategy.view_sizes())
        return total

    def view_sizes(self) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        for name, strategy in zip(self.names, self.strategies):
            for view, size in strategy.view_sizes().items():
                sizes[f"{name}:{view}"] = size
        return sizes
