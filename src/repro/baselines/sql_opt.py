"""SQL-OPT: the optimized SQL encoding of cofactor-matrix maintenance.

SQL-OPT (Section 7) uses the same variable order and view tree as F-IVM but
encodes the regression aggregates *explicitly*, as a single aggregate column
indexed by variable degrees, instead of F-IVM's packed (c, s, Q) triples.
We model it as the F-IVM engine instantiated with the sparse
:class:`repro.rings.degree.DegreeRing` — identical maintenance strategy,
different payload representation cost, which is exactly the comparison the
paper draws.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.core.engine import FIVMEngine
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.data.database import Database
from repro.rings.degree import DegreeRing
from repro.rings.lifting import Lifting

__all__ = ["SQLOptCofactor", "degree_query"]


def degree_query(
    name: str,
    relations: Mapping[str, Sequence[str]],
    numeric_variables: Sequence[str],
    free: Iterable[str] = (),
) -> Query:
    """A cofactor query over the degree ring (SQL-OPT's payload encoding).

    ``numeric_variables`` lists the variables participating in the cofactor
    matrix, in model order; every one of them gets the degree-indexed lift.
    """
    ring = DegreeRing(len(numeric_variables))
    lifting = Lifting(ring)
    for index, variable in enumerate(numeric_variables):
        lifting.set(variable, ring.lift(index))
    return Query(name, relations, free=free, ring=ring, lifting=lifting)


class SQLOptCofactor(FIVMEngine):
    """The F-IVM engine over degree-indexed scalar payloads."""

    def __init__(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]],
        numeric_variables: Sequence[str],
        free: Iterable[str] = (),
        order: Optional[VariableOrder] = None,
        updatable: Optional[Iterable[str]] = None,
        db: Optional[Database] = None,
    ):
        query = degree_query(name, relations, numeric_variables, free)
        super().__init__(query, order=order, updatable=updatable, db=db)
        self.numeric_variables = tuple(numeric_variables)
