"""Competitor strategies: 1-IVM, recursive IVM (DBT), re-evaluation, SQL-OPT."""

from repro.baselines.first_order import FirstOrderIVM
from repro.baselines.recursive import RecursiveIVM, ScalarAggregateBank
from repro.baselines.reeval import FactorizedReevaluator, NaiveReevaluator
from repro.baselines.sql_opt import SQLOptCofactor, degree_query

__all__ = [
    "FirstOrderIVM",
    "RecursiveIVM",
    "ScalarAggregateBank",
    "FactorizedReevaluator",
    "NaiveReevaluator",
    "SQLOptCofactor",
    "degree_query",
]
