"""Re-evaluation baselines: recompute the result from scratch per update.

Two variants, matching Appendix C's Figure 11:

* **F-RE** (:class:`FactorizedReevaluator`) — re-evaluates the query through
  the F-IVM view tree (factorized, aggregates pushed past joins) after every
  update batch.
* **DBT-RE / naive** (:class:`NaiveReevaluator`) — joins all relations
  left-to-right and aggregates at the end, the listing-representation cost
  the paper's Example 1.1 calls cubic.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import build_view_tree
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["FactorizedReevaluator", "NaiveReevaluator"]


class _ReevalBase:
    def __init__(self, query: Query, db: Optional[Database] = None):
        self.query = query
        self.base: Dict[str, Relation] = {
            rel: Relation(rel, schema, query.ring)
            for rel, schema in query.relations.items()
        }
        if db is not None:
            for rel in self.base:
                self.base[rel] = db.relation(rel).copy()
        self._result: Optional[Relation] = None

    def apply_update(self, delta: Relation) -> Relation:
        self.base[delta.name].absorb(delta)
        self._result = self._recompute()
        return self._result

    def result(self) -> Relation:
        if self._result is None:
            self._result = self._recompute()
        return self._result

    def view_sizes(self) -> Dict[str, int]:
        sizes = {rel: len(r) for rel, r in self.base.items()}
        if self._result is not None:
            sizes["result"] = len(self._result)
        return sizes

    def _recompute(self) -> Relation:  # pragma: no cover - abstract
        raise NotImplementedError


class FactorizedReevaluator(_ReevalBase):
    """F-RE: full re-evaluation along the factorized view tree."""

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        db: Optional[Database] = None,
    ):
        super().__init__(query, db)
        self.tree = build_view_tree(query, order)

    def _recompute(self) -> Relation:
        results = self.tree.evaluate(_BaseView(self.base))
        return results[self.tree.root.name]


class NaiveReevaluator(_ReevalBase):
    """Naive re-evaluation: join everything, aggregate at the end."""

    def _recompute(self) -> Relation:
        current: Optional[Relation] = None
        for rel in self.query.relations:
            contents = self.base[rel]
            current = contents if current is None else current.join(contents)
        assert current is not None
        result = current.group_by(
            self.query.free, self.query.lifting.table(), name="result"
        )
        return result


class _BaseView:
    """Adapter presenting a dict of relations with the Database interface."""

    def __init__(self, base: Dict[str, Relation]):
        self._base = base

    def relation(self, name: str) -> Relation:
        return self._base[name]
