"""First-order IVM (1-IVM): no auxiliary views, delta queries on the fly.

Classical IVM [12] stores only the input relations and the query result.
Every update triggers evaluation of the delta query — the join of the delta
with all other *base* relations — from scratch.  As in DBToaster's
first-order mode described in Section 7, the delta query is optimized by
placing aggregates around connected components (we reuse the F-IVM view-tree
structure for that push-down, but materialize nothing), so a single-tuple
update costs time linear in the database rather than constant.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, ViewTree, build_view_tree, compute_view
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["FirstOrderIVM"]


class FirstOrderIVM:
    """Maintains the query result with no auxiliary materialized views."""

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        db: Optional[Database] = None,
    ):
        self.query = query
        self.tree: ViewTree = build_view_tree(query, order)
        self.base: Dict[str, Relation] = {
            rel: Relation(rel, schema, query.ring)
            for rel, schema in query.relations.items()
        }
        root = self.tree.root
        self._result = Relation(root.name, root.keys, query.ring)
        if db is not None:
            self.initialize(db)

    def initialize(self, db: Database) -> None:
        """Load base relation copies and compute the initial result."""
        for rel in self.base:
            self.base[rel] = db.relation(rel).copy()
        self._result.clear()
        self._result.absorb(
            self.tree.evaluate(_BaseView(self.base))[self.tree.root.name]
        )

    def result(self) -> Relation:
        return self._result

    def apply_update(self, delta: Relation) -> Relation:
        """Evaluate the delta query from base relations and fold it in."""
        rel = delta.name
        if rel not in self.base:
            raise KeyError(f"unknown relation {rel!r}")
        root_delta = self._evaluate_delta(self.tree.root, rel, delta)
        self._result.absorb(root_delta)
        self.base[rel].absorb(delta)
        return root_delta

    def _evaluate_delta(
        self, node: ViewNode, rel: str, delta: Relation
    ) -> Relation:
        """Recursive on-the-fly evaluation with the delta at R's leaf.

        Subtrees not containing R are (re)computed in full on every call —
        the defining inefficiency of first-order IVM that the benchmarks
        measure.
        """
        if node.is_leaf:
            return delta if node.leaf_of == rel else self.base[node.leaf_of]
        child_contents = []
        for child in node.children:
            if rel in child.relations:
                child_contents.append(self._evaluate_delta(child, rel, delta))
            else:
                child_contents.append(self._evaluate_full(child))
        return compute_view(node, child_contents, self.query)

    def _evaluate_full(self, node: ViewNode) -> Relation:
        if node.is_leaf:
            return self.base[node.leaf_of]
        child_contents = [self._evaluate_full(child) for child in node.children]
        return compute_view(node, child_contents, self.query)

    def view_sizes(self) -> Dict[str, int]:
        """Stored state: the base relations and the result."""
        sizes = {rel: len(r) for rel, r in self.base.items()}
        sizes[self._result.name] = len(self._result)
        return sizes


class _BaseView:
    """Adapter presenting a dict of relations with the Database interface."""

    def __init__(self, base: Dict[str, Relation]):
        self._base = base

    def relation(self, name: str) -> Relation:
        return self._base[name]
