"""A 20-tile dashboard on one MultiViewEngine: sharing + target lags.

A retailer-style database — ``Items(category, item)``, ``Sales(item,
store)``, ``Stores(region, store)`` — serves twenty registered "tiles":

* twelve *category tiles*, each joining the shared ``Items ⋈ Sales``
  core with its own small watchlist relation (per-tile highlight flags);
* six *region tiles* on the shared ``Stores ⋈ Sales`` core plus a
  per-tile region annotation;
* a grand-total counter (no free variables) and an item-degree view.

Tiles declare different target lags: the ticker tiles refresh eagerly on
every write, the heavy tiles only when their staleness exceeds their
budget, coalescing many deltas into one refresh.  The engine cuts the two
shared join cores out automatically (watch ``shared_stats()``: two shared
sub-views, maintained once each, fanning deltas to 12 and 6 subscribers),
and every refresh picks incremental maintenance or recompute per the
touched fraction.  A single-query :class:`~repro.core.engine.FIVMEngine`
oracle checks one tile's contents at the end — sharing and lagging change
*when* work happens, never the answer.

Run with::

    PYTHONPATH=src python examples/multiview_dashboard.py
"""

import random
import time

from repro.core import FIVMEngine, MultiViewEngine, Query
from repro.data import Database, Relation
from repro.rings import INT_RING

CORE = {
    "Items": ("category", "item"),
    "Sales": ("item", "store"),
    "Stores": ("region", "store"),
}
N_CATEGORY_TILES = 12
N_REGION_TILES = 6
CATEGORIES, ITEMS, STORES, REGIONS = 8, 40, 15, 5


def category_tile(i: int) -> Query:
    """Sales count per watched category, one watchlist per tile."""
    return Query(
        f"tile_cat_{i:02d}",
        {
            "Items": CORE["Items"],
            "Sales": CORE["Sales"],
            f"WatchC{i:02d}": ("category", "flag"),
        },
        free=("category",),
        ring=INT_RING,
    )


def region_tile(i: int) -> Query:
    """Sales count per annotated region, one annotation per tile."""
    return Query(
        f"tile_reg_{i:02d}",
        {
            "Stores": CORE["Stores"],
            "Sales": CORE["Sales"],
            f"NoteR{i:02d}": ("region", "flag"),
        },
        free=("region",),
        ring=INT_RING,
    )


def main() -> None:
    rng = random.Random(7)
    mv = MultiViewEngine()

    lags = {}
    for i in range(N_CATEGORY_TILES):
        lag = [0.0, 0.0, 0.05, 0.5][i % 4]  # mixed budgets across tiles
        lags[mv.register(category_tile(i), target_lag=lag)] = lag
    for i in range(N_REGION_TILES):
        lag = [0.0, 0.1][i % 2]
        lags[mv.register(region_tile(i), target_lag=lag)] = lag
    lags[mv.register(
        Query("grand_total", dict(CORE), free=(), ring=INT_RING),
        target_lag=0.2,
    )] = 0.2
    lags[mv.register(
        Query(
            "items_per_category",
            {"Items": CORE["Items"]},
            free=("category",),
            ring=INT_RING,
        ),
    )] = 0.0
    print(f"registered {len(mv.view_names())} views "
          f"({sum(1 for lag in lags.values() if lag == 0)} eager, "
          f"{sum(1 for lag in lags.values() if lag > 0)} lagged)")

    # Dimension data: catalogue, store directory, per-tile annotations.
    watchlists = {
        f"WatchC{i:02d}": {(c, 1): 1
                           for c in rng.sample(range(CATEGORIES), 5)}
        for i in range(N_CATEGORY_TILES)
    }
    mv.apply_batch(
        [
            ("Items", {(i % CATEGORIES, i): 1 for i in range(ITEMS)}),
            ("Stores", {(s % REGIONS, s): 1 for s in range(STORES)}),
        ]
        + list(watchlists.items())
        + [
            (f"NoteR{i:02d}", {(r, 1): 1 for r in range(REGIONS)})
            for i in range(N_REGION_TILES)
        ]
    )

    # The live part: bursts of sales, a scheduler tick between bursts.
    sales_log = {}
    for burst in range(30):
        counts = {}
        for _ in range(rng.randint(5, 25)):
            key = (rng.randrange(ITEMS), rng.randrange(STORES))
            counts[key] = counts.get(key, 0) + 1
            sales_log[key] = sales_log.get(key, 0) + 1
        mv.apply_update("Sales", counts)
        if burst % 10 == 9:
            time.sleep(0.06)  # let the 50ms-budget tiles fall due
            mv.tick()
    mv.drain()

    print("\nshared sub-views (each maintained once, fanned out):")
    for name, entry in mv.shared_stats().items():
        print(f"  {name}: core={entry['relations']} "
              f"subscribers={entry['subscribers']} "
              f"refreshes={entry['refreshes']} hits={entry['hits']} "
              f"fanouts={entry['fanouts']}")

    print("\nper-tile refresh behaviour (lag buys coalescing):")
    for name in mv.view_names():
        stats = mv.view_stats(name)
        print(f"  {name}: lag={stats['target_lag']:.2f}s "
              f"refreshes={stats['refreshes']} "
              f"(incremental={stats['incremental']}, "
              f"recomputes={stats['recomputes']}) "
              f"staleness={stats['staleness']:.3f}s")

    total = mv.result("grand_total").payload(())
    print(f"\ngrand total: {total} sales")
    top = sorted(
        mv.result("tile_cat_00").items(), key=lambda kv: -kv[1]
    )[:3]
    print(f"tile_cat_00 top categories: {top}")

    # The oracle: one classic engine over the final state must agree.
    query = category_tile(0)
    oracle = FIVMEngine(query)
    tables = {
        "Items": {(i % CATEGORIES, i): 1 for i in range(ITEMS)},
        "Sales": sales_log,
        "WatchC00": watchlists["WatchC00"],
    }
    oracle.initialize(
        Database(
            Relation(rel, query.relations[rel], INT_RING, tables[rel])
            for rel in query.relations
        )
    )
    assert dict(mv.result("tile_cat_00").items()) == dict(
        oracle.result().items()
    )
    print("oracle check: tile_cat_00 matches a dedicated engine — "
          "sharing and lags changed the schedule, not the answer")


if __name__ == "__main__":
    main()
