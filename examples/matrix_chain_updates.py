#!/usr/bin/env python3
"""Incremental matrix chain multiplication with factorized updates (§6.1).

Maintains ``A = A₁ A₂ A₃`` under rank-1 changes to the middle matrix.
A rank-1 delta ``δA₂ = u vᵀ`` propagates as two matrix-vector products and
one outer product — O(n²) — while re-evaluation pays O(n³) matrix-matrix
multiplications.  Both the ring-relational engine (hash-map runtime) and
the dense numpy engine (the paper's Octave analog) are shown.
"""

import time

import numpy as np

from repro.apps import DenseChainFIVM, DenseChainReeval, MatrixChainIVM
from repro.datasets.matrices import random_matrix, rank_r_update, row_update


def main() -> None:
    rng = np.random.default_rng(7)

    print("=== Ring-relational engine (exact, any chain length) ===")
    n = 24
    matrices = [random_matrix(n, n, rng) for _ in range(3)]
    chain = MatrixChainIVM(matrices, updatable=["A2"])
    u, v = row_update(n, row=5, rng=rng)
    chain.apply_rank_one(2, u, v)
    expected = matrices[0] @ (matrices[1] + np.outer(u, v)) @ matrices[2]
    error = float(np.max(np.abs(chain.result_matrix() - expected)))
    print(f"n={n}: one-row update maintained, max error {error:.2e}")
    print(f"materialized views: {sorted(chain.engine.materialized_names())}")
    print()

    print("=== Dense engine: incremental vs re-evaluation ===")
    n = 256
    mats = [random_matrix(n, n, rng) for _ in range(3)]
    fivm = DenseChainFIVM(*mats)
    reeval = DenseChainReeval(*mats)
    updates = [row_update(n, int(rng.integers(0, n)), rng) for _ in range(20)]

    start = time.perf_counter()
    for uu, vv in updates:
        fivm.apply_rank_one(uu, vv)
    t_fivm = time.perf_counter() - start

    start = time.perf_counter()
    for uu, vv in updates:
        reeval.apply_rank_one(uu, vv)
    t_reeval = time.perf_counter() - start

    assert np.allclose(fivm.result, reeval.result)
    print(f"n={n}, {len(updates)} one-row updates:")
    print(f"  F-IVM   : {t_fivm * 1e3 / len(updates):8.3f} ms/update")
    print(f"  RE-EVAL : {t_reeval * 1e3 / len(updates):8.3f} ms/update")
    print(f"  speedup : {t_reeval / t_fivm:.1f}x")
    print()

    print("=== Rank-r updates: cost linear in the tensor rank ===")
    for rank in (1, 4, 16):
        engine = DenseChainFIVM(*mats)
        terms = rank_r_update(n, rank, rng)
        start = time.perf_counter()
        engine.apply_rank_r(terms)
        elapsed = time.perf_counter() - start
        print(f"  rank {rank:3d}: {elapsed * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
