#!/usr/bin/env python3
"""Graphical-model inference on F-IVM view trees (the paper's outlook).

A small image-denoising-style Markov chain: hidden binary pixels X1..X6
with smoothness pairwise potentials and noisy unary observations.  The
partition function and marginals are join-aggregate queries over the ℝ
ring; MAP swaps in the max-product semiring over the same view tree.
Evidence arrives *incrementally*: conditioning is a batch of payload
deltas that F-IVM propagates through the elimination tree instead of
re-running inference.
"""

from repro.apps.inference import (
    FactorGraph,
    MaxProductInference,
    SumProductInference,
)


def build_model(n_pixels: int = 6) -> FactorGraph:
    graph = FactorGraph()
    names = [f"X{i}" for i in range(1, n_pixels + 1)]
    for name in names:
        graph.add_variable(name, (0, 1))
    # Smoothness: neighbours prefer agreeing.
    for left, right in zip(names, names[1:]):
        graph.add_factor(
            f"smooth_{left}_{right}", (left, right),
            {(0, 0): 2.0, (1, 1): 2.0, (0, 1): 0.5, (1, 0): 0.5},
        )
    # Noisy observations: pixels 2 and 5 look bright.
    graph.add_factor("obs_X2", ("X2",), {(0,): 0.3, (1,): 1.7})
    graph.add_factor("obs_X5", ("X5",), {(0,): 0.4, (1,): 1.6})
    return graph


def main() -> None:
    graph = build_model()

    sum_product = SumProductInference(graph)
    print(f"Partition function Z = {sum_product.partition_function():.4f}")

    pixel_marginal = SumProductInference(graph, free=("X4",))
    print("P(X4):", {k[0]: round(v, 4) for k, v in pixel_marginal.marginal().items()})

    print("\nConditioning on evidence X1 = 1 (incremental payload deltas):")
    pixel_marginal.condition("X1", 1)
    print("P(X4 | X1=1):",
          {k[0]: round(v, 4) for k, v in pixel_marginal.marginal().items()})

    print("\nPotential drift: the sensor at X5 is recalibrated:")
    pixel_marginal.update_potential("obs_X5", (1,), 0.9)
    print("P(X4 | X1=1, new obs):",
          {k[0]: round(v, 4) for k, v in pixel_marginal.marginal().items()})

    max_product = MaxProductInference(graph)
    assignment, weight = max_product.map_assignment()
    print(f"\nMAP assignment (weight {weight:.4f}):")
    print("  " + " ".join(f"{v}={assignment[v]}" for v in sorted(assignment)))


if __name__ == "__main__":
    main()
