"""Sharded F-IVM: hash-partitioned maintenance with ring-merged results.

A COUNT-style aggregate over a three-way join is maintained twice — by a
single engine and by a 3-shard :class:`ShardedFIVMEngine` — under the same
update stream.  The sharded engine hash-partitions every relation that
contains the shard variable (the variable-order root), replicates the
rest, and merges per-shard root deltas with ring addition; the totals
match update for update.  A second section runs the multiprocessing
executor on the retailer cofactor workload, the configuration the
shard-scaling benchmark measures — first per-update, then with a
pipelined send-ahead window and lazily resolved root deltas.  A final
section drives a loopback :class:`repro.serve.ShardHost` over the
socket transport: the same engine, off one box.
"""

import random
import threading

from repro.apps.regression import cofactor_query
from repro.core import FIVMEngine, Query, ShardedFIVMEngine, VariableOrder
from repro.data import Relation
from repro.datasets import retailer
from repro.rings import INT_RING

SCHEMAS = {
    "Orders": ("customer", "item"),
    "Items": ("item", "price_band"),
    "Stock": ("item", "warehouse"),
}


def main() -> None:
    query = Query("orders_per_band", SCHEMAS, free=("price_band",), ring=INT_RING)
    order = VariableOrder.auto(Query("o", SCHEMAS, free=("price_band",), ring=INT_RING))
    single = FIVMEngine(query, order)
    sharded = ShardedFIVMEngine(
        Query("orders_per_band_s", SCHEMAS, free=("price_band",), ring=INT_RING),
        order,
        shards=3,
    )
    print(f"shard variable: {sharded.shard_key}")
    print(f"hash-partitioned: {sorted(sharded.partitioned)}")
    print(f"replicated:       {sorted(sharded.replicated)}\n")

    rng = random.Random(42)
    for step in range(60):
        rel = rng.choice(sorted(SCHEMAS))
        key = tuple(rng.randint(0, 9) for _ in SCHEMAS[rel])
        delta = Relation(rel, SCHEMAS[rel], INT_RING, {key: 1})
        expected = single.apply_update(delta.copy())
        merged = sharded.apply_update(delta.copy())
        assert expected.same_as(merged.rename({}, name=expected.name)), step

    result = sharded.result()
    print(f"counts per price band after 60 updates ({len(result)} groups):")
    print(result.pretty(limit=6))
    assert single.result().same_as(result.rename({}, name=single.result().name))
    print("\nsingle-engine and 3-shard results agree, update for update.\n")

    # The multiprocessing configuration (one forked worker per shard) on a
    # small retailer cofactor stream — the shard-scaling bench's setup.
    workload = retailer.generate(scale=0.03, seed=7)
    cof_query = cofactor_query(
        "retailer", workload.schemas, workload.numeric_variables
    )
    engine = ShardedFIVMEngine(
        cof_query, order=workload.variable_order, shards=2, executor="process"
    )
    try:
        print(f"retailer cofactor over executor={engine.executor!r}: ", end="")
        batch = []
        for rel, rows in workload.tables.items():
            batch.append(Relation.from_tuples(
                rel, workload.schemas[rel], cof_query.ring, rows[:40]
            ))
        engine.apply_batch(batch)
        triple = engine.result().payload(())
        print(f"count={int(triple.count)} after one multi-relation batch")
    finally:
        engine.close()

    # Pipelined apply: with a send-ahead window, apply_update returns a
    # lazily resolved root delta immediately — acks drain in the
    # background of the request stream, and any read (or flush()) is the
    # barrier.  This is the configuration the shard-pipelining bench
    # ratchets: same results, a fraction of the round trips.
    pipelined = ShardedFIVMEngine(
        cof_query, order=workload.variable_order, shards=2,
        executor="process", pipeline_depth=16,
    )
    try:
        deltas = []
        for rel, rows in workload.tables.items():
            for row in rows[:25]:
                deltas.append(pipelined.apply_update(Relation.from_tuples(
                    rel, workload.schemas[rel], cof_query.ring, [row]
                )))
        pipelined.flush()  # window drained; deltas still lazy until read
        # Handles that crossed a checkpoint boundary resolved eagerly;
        # the rest stay lazy forever unless something reads them.
        lazy = sum(not getattr(d, "resolved", True) for d in deltas)
        print(
            f"pipelined (depth 16): {len(deltas)} updates enqueued, "
            f"{lazy} root deltas never materialized"
        )
        count = int(pipelined.result().payload(()).count)
        print(f"pipelined cofactor count after flush: {count}")
    finally:
        pipelined.close()

    # Socket transport: the coordinator dials a ShardHost per shard over
    # TCP.  Here both hosts are loopback threads; in production each runs
    # on its own machine (`ShardHost(factory, host="0.0.0.0").serve()`).
    from repro.serve import ShardHost

    hosts = [
        ShardHost(lambda: FIVMEngine(cof_query, workload.variable_order))
        for _ in range(2)
    ]
    threads = [
        threading.Thread(target=h.serve, kwargs={"sessions": 1}, daemon=True)
        for h in hosts
    ]
    for t in threads:
        t.start()
    remote = ShardedFIVMEngine(
        cof_query, order=workload.variable_order, shards=2,
        executor="socket", pipeline_depth=8,
        shard_addresses=[h.address for h in hosts],
    )
    try:
        for rel, rows in workload.tables.items():
            remote.apply_update(Relation.from_tuples(
                rel, workload.schemas[rel], cof_query.ring, rows[:40]
            ))
        count = int(remote.result().payload(()).count)
        addresses = ", ".join(f"{h}:{p}" for h, p in (h.address for h in hosts))
        print(f"socket shards at [{addresses}]: count={count}")
    finally:
        remote.close()
        for h in hosts:
            h.close()


if __name__ == "__main__":
    main()
