#!/usr/bin/env python3
"""Quickstart: the paper's Example 1.1, maintained incrementally.

The query::

    SELECT S.A, S.C, SUM(R.B * T.D * S.E)
    FROM R NATURAL JOIN S NATURAL JOIN T
    GROUP BY S.A, S.C;

is expressed as a join-aggregate query over the ℝ ring with identity lifts
for B, D, and E, compiled into a view tree over the variable order
A - {B, C - {D, E}}, and maintained under a mix of inserts and deletes.
"""

from repro import FIVMEngine, Query, Relation, VariableOrder
from repro.rings import Lifting, RealRing


def main() -> None:
    ring = RealRing()
    lifting = Lifting(ring, {"B": float, "D": float, "E": float})
    query = Query(
        "Q",
        relations={"R": ("A", "B"), "S": ("A", "C", "E"), "T": ("C", "D")},
        free=("A", "C"),
        ring=ring,
        lifting=lifting,
    )
    order = VariableOrder.from_spec(("A", [("C", ["B", "D", "E"])]))
    engine = FIVMEngine(query, order)

    print("View tree (aggregates pushed past joins):")
    print(engine.tree.pretty())
    print()
    print(f"Materialized views: {sorted(engine.materialized_names())}")
    print()

    def update(rel: str, schema, rows, multiplicity=1):
        delta = Relation(rel, schema, ring)
        for row in rows:
            delta.add(row, float(multiplicity))
        root_delta = engine.apply_update(delta)
        change = dict(root_delta.items())
        print(f"  δ{rel} ({'insert' if multiplicity > 0 else 'delete'} "
              f"{len(rows)} rows) -> result change {change or '{}'}")

    print("Streaming updates:")
    update("R", ("A", "B"), [("a1", 2.0), ("a2", 5.0)])
    update("S", ("A", "C", "E"), [("a1", "c1", 3.0), ("a1", "c2", 1.0)])
    update("T", ("C", "D"), [("c1", 10.0), ("c2", 4.0)])
    update("S", ("A", "C", "E"), [("a2", "c2", 2.0)])
    update("R", ("A", "B"), [("a1", 2.0)], multiplicity=-1)  # delete

    print()
    print("Maintained result  SUM(B*D*E) GROUP BY A, C:")
    for key, value in sorted(engine.result().items()):
        print(f"  {key} -> {value}")


if __name__ == "__main__":
    main()
