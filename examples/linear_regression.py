#!/usr/bin/env python3
"""Learning a linear regression model over the Housing star join (§6.2).

The training dataset is the natural join of six relations on ``postcode``
— never materialized.  F-IVM maintains the (c, s, Q) sufficient statistics
in the degree-26 matrix ring while tuples stream in; training then runs on
the maintained moment matrix alone, via closed-form least squares and via
the paper's batch gradient descent, whose per-step cost is independent of
the data size.
"""

import numpy as np

from repro.apps import CofactorModel
from repro.datasets import housing, round_robin_stream


def main() -> None:
    workload = housing.generate(scale=2, postcodes=60, seed=1)
    # Model variables: everything except the join key we group nothing by.
    numeric = tuple(v for v in workload.numeric_variables if v != "postcode")
    model = CofactorModel(
        "housing",
        workload.schemas,
        numeric,
        order=workload.variable_order,
    )
    ring = model.query.ring

    stream = round_robin_stream(workload.schemas, workload.tables, batch_size=100)
    print(f"Streaming {stream.total_tuples} tuples in {len(stream)} batches ...")
    for delta in stream.deltas(ring):
        model.apply_update(delta)

    moments = model.moment_matrix()
    print(f"Join cardinality (from the count aggregate): {moments[0, 0]:.0f}")
    print(f"Maintained moment matrix: {moments.shape[0]}x{moments.shape[1]}")
    print()

    features = ["livingarea", "nbbedrooms", "nbbathrooms", "averagesalary"]
    label = "price"

    closed = model.solve(features, label, ridge=1e-6)
    print(f"Closed-form least squares:  {closed}")

    iterative = model.gradient_descent(
        features, label, max_iterations=200_000, tolerance=1e-10
    )
    print(f"Batch gradient descent:     {iterative}")
    print(f"  converged in {iterative.iterations} O(m²) steps "
          "(no pass over the data)")
    gap = float(np.max(np.abs(closed.theta - iterative.theta)))
    print(f"  max |θ_closed - θ_gd| = {gap:.2e}")
    print()

    # The same statistics serve any other feature/label split for free.
    other = model.solve(["crimesperyear", "nbhospitals"], "averagesalary")
    print(f"Reusing the same statistics: {other}")

    sample = {"livingarea": 25.0, "nbbedrooms": 3.0,
              "nbbathrooms": 2.0, "averagesalary": 30.0}
    print(f"Prediction for {sample}: price ≈ {closed.predict(sample):.2f}")


if __name__ == "__main__":
    main()
