#!/usr/bin/env python3
"""Cyclic joins with indicator projections (Appendix B).

The triangle query Q△ = R(A,B) ⋈ S(B,C) ⋈ T(C,A) is cyclic: the view
joining S and T over the order A-B-C can hold O(N²) keys.  Joining in the
indicator projection ∃_{A,B} R closes the cycle and keeps that view small
without changing the result.  This example maintains the triangle count on
a skewed graph stream, with and without the indicator, and compares view
sizes and per-update behaviour.
"""

from repro import FIVMEngine, Query, add_indicator_projections, build_view_tree
from repro.datasets import round_robin_stream, twitter
from repro.rings import INT_RING


def build_engine(workload, with_indicator: bool) -> FIVMEngine:
    query = Query("triangle", workload.schemas, ring=INT_RING)
    tree = build_view_tree(query, workload.variable_order)
    if with_indicator:
        add_indicator_projections(tree)
    return FIVMEngine(query, tree=tree)


def main() -> None:
    workload = twitter.generate(n_nodes=120, n_edges=2500, seed=4)
    print(f"Graph: {workload.metadata['edges']} edges split into R, S, T")

    plain = build_engine(workload, with_indicator=False)
    indexed = build_engine(workload, with_indicator=True)
    print("\nView tree with the indicator projection:")
    print(indexed.tree.pretty())

    stream = round_robin_stream(workload.schemas, workload.tables, batch_size=100)
    for delta in stream.deltas(INT_RING):
        plain.apply_update(delta.copy())
        indexed.apply_update(delta)

    count_plain = plain.result().payload(())
    count_indexed = indexed.result().payload(())
    assert count_plain == count_indexed
    print(f"\nMaintained triangle count: {count_indexed}")

    def st_view_size(engine):
        node = next(
            n for n in engine.tree.nodes
            if not n.is_leaf and n.relations == frozenset({"S", "T"})
        )
        return len(engine.views[node.name])

    print("\nSize of the S⊗T view (the Example B.1 blow-up point):")
    print(f"  without indicator: {st_view_size(plain):6d} keys")
    print(f"  with ∃_AB R      : {st_view_size(indexed):6d} keys")

    print("\nTotal stored keys per engine:")
    print(f"  without indicator: {plain.total_keys():6d}")
    print(f"  with ∃_AB R      : {indexed.total_keys():6d}")


if __name__ == "__main__":
    main()
