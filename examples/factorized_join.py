#!/usr/bin/env python3
"""Conjunctive query results: listing vs factorized representations (§6.3).

Maintains the natural join of the Housing relations under a tuple stream in
all three result representations the paper compares — result tuples as view
keys, as one relational payload, and factorized across the view hierarchy —
then contrasts their logical memory and shows lossless enumeration from the
factorized form.
"""

from repro.apps import ConjunctiveQuery
from repro.datasets import housing, round_robin_stream


def main() -> None:
    workload = housing.generate(scale=3, postcodes=12, seed=2)
    free = tuple(
        dict.fromkeys(a for s in workload.schemas.values() for a in s)
    )
    modes = ("listing_keys", "listing_payloads", "factorized")
    engines = {
        mode: ConjunctiveQuery(
            "housing_join", workload.schemas, free,
            mode=mode, order=workload.variable_order,
        )
        for mode in modes
    }

    stream = round_robin_stream(workload.schemas, workload.tables, batch_size=50)
    print(f"Streaming {stream.total_tuples} tuples into 3 engines ...")
    for mode, engine in engines.items():
        for delta in stream.deltas(engine.ring):
            engine.apply_update(delta)

    result_size = engines["listing_keys"].result_size()
    print(f"\nJoin result: {result_size} tuples over {len(free)} attributes")
    print("\nLogical memory (stored scalars across all views):")
    for mode in modes:
        memory = engines[mode].memory()
        print(f"  {mode:18s}: {memory:10d}")
    ratio = engines["listing_keys"].memory() / engines["factorized"].memory()
    print(f"  listing/factorized ratio: {ratio:.1f}x")

    print("\nFirst 5 tuples enumerated from the factorized representation:")
    for index, (row, multiplicity) in enumerate(engines["factorized"].enumerate()):
        if index >= 5:
            break
        print(f"  {row} x{multiplicity}")

    listing = engines["listing_keys"].to_listing()
    fact = engines["factorized"].to_listing()
    assert listing.same_as(fact.rename({}, name=listing.name))
    print("\nFactorized enumeration matches the listing result exactly.")


if __name__ == "__main__":
    main()
